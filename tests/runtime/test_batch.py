"""Shared-scan batch execution: byte-identical to sequential search.

The core guarantee of ``SearchSession.search_batch`` is that sharing one
Dewey-order scan across a workload changes *nothing* about any query's
answer — codes, sizes, term vectors and order all match a private
evaluation.  These tests check that on the paper's Figure 1 tree, on
small generated Table-2 datasets (both the engine and the literal
lattice machine), and property-based over random workloads.
"""

import pytest
from hypothesis import given, strategies as st

from repro.datasets import generate_baseball, generate_dblp
from repro.index.inverted import InvertedIndex
from repro.obs import metrics_scope
from repro.runtime import SearchOptions, SearchSession

from tests.conftest import Q1


@pytest.fixture(scope="module")
def table2_workloads():
    """Two small generated datasets with their Table 2 queries."""
    datasets = [generate_dblp(scale=12, seed=3),
                generate_baseball(scale=4, seed=5)]
    return [(dataset.name, InvertedIndex.from_tree(dataset.tree),
             list(dataset.queries.values()))
            for dataset in datasets]


def assert_identical(batch, sequential):
    """Full structural equality: codes, sizes, term vectors, order."""
    assert len(batch) == len(sequential)
    for got, expected in zip(batch, sequential):
        assert got == expected


class TestFigure1:
    @pytest.fixture()
    def session(self, figure1_index):
        return SearchSession(figure1_index)

    WORKLOAD = [Q1, "(xml keyword)", Q1, "(paul  cooper)",
                "(mary davis)", "(xml (paul cooper))"]

    @pytest.mark.parametrize("algorithm", ["cohesive", "machine"])
    def test_batch_equals_sequential(self, session, algorithm):
        options = SearchOptions(algorithm=algorithm)
        batch = session.search_batch(self.WORKLOAD, options)
        sequential = [session.search(query, options)
                      for query in self.WORKLOAD]
        assert_identical(batch, sequential)

    def test_duplicates_dedup_to_one_plan(self, session):
        with metrics_scope() as registry:
            session.search_batch(self.WORKLOAD)
            counters = registry.snapshot()["counters"]
        assert counters["batch_queries"] == len(self.WORKLOAD)
        assert counters["batch_distinct_plans"] == 5  # Q1 twice
        assert counters["batch_scan_nodes"] > 0

    def test_duplicate_answers_are_independent_lists(self, session):
        answers = session.search_batch([Q1, Q1])
        assert answers[0] == answers[1]
        answers[0].append("sentinel")
        assert answers[1][-1] != "sentinel"

    def test_empty_workload(self, session):
        assert session.search_batch([]) == []

    def test_unknown_keyword_query_in_batch(self, session):
        batch = session.search_batch([Q1, "(xml zzzznothing)"])
        assert batch[0] == session.search(Q1)
        assert batch[1] == []

    def test_batch_with_skyline_rank(self, session):
        options = SearchOptions(rank="skyline")
        batch = session.search_batch(self.WORKLOAD, options)
        sequential = [session.search(query, options)
                      for query in self.WORKLOAD]
        assert_identical(batch, sequential)

    def test_batch_with_vector_rank(self, session):
        options = SearchOptions(rank="vector")
        batch = session.search_batch(self.WORKLOAD, options)
        sequential = [session.search(query, options)
                      for query in self.WORKLOAD]
        assert_identical(batch, sequential)

    def test_batch_with_max_size(self, session):
        options = SearchOptions(max_size=4)
        assert_identical(
            session.search_batch(self.WORKLOAD, options),
            [session.search(query, options) for query in self.WORKLOAD])

    def test_top_k_falls_back_per_query(self, session):
        options = SearchOptions(top_k=2)
        assert_identical(
            session.search_batch(self.WORKLOAD, options),
            [session.search(query, options) for query in self.WORKLOAD])

    def test_baseline_batch_falls_back_per_query(self, session):
        options = SearchOptions(algorithm="slca")
        assert_identical(
            session.search_batch(self.WORKLOAD, options),
            [session.search(query, options) for query in self.WORKLOAD])


class TestTable2Workloads:
    """The paper's effectiveness queries, engine and machine."""

    @pytest.mark.parametrize("algorithm", ["cohesive", "machine"])
    def test_batch_equals_sequential(self, table2_workloads, algorithm):
        options = SearchOptions(algorithm=algorithm)
        for name, index, queries in table2_workloads:
            session = SearchSession(index)
            batch = session.search_batch(queries, options)
            sequential = [session.search(query, options)
                          for query in queries]
            assert_identical(batch, sequential)

    def test_whole_workload_at_once(self, table2_workloads):
        # All five queries of a dataset plus duplicates in one batch.
        for name, index, queries in table2_workloads:
            workload = queries + queries[:2]
            session = SearchSession(index)
            assert_identical(
                session.search_batch(workload),
                [session.search(query) for query in workload])


KEYWORDS = ["xml", "keyword", "search", "paul", "cooper",
            "mary", "davis", "data", "retrieval"]


@st.composite
def _queries(draw):
    count = draw(st.integers(min_value=2, max_value=4))
    picked = draw(st.lists(st.sampled_from(KEYWORDS), min_size=count,
                           max_size=count, unique=True))
    if draw(st.booleans()) and count >= 3:
        inner = " ".join(picked[1:])
        return f"({picked[0]} ({inner}))"
    return "(" + " ".join(picked) + ")"


class TestPropertyBased:
    @given(workload=st.lists(_queries(), min_size=1, max_size=6),
           algorithm=st.sampled_from(["cohesive", "machine"]))
    def test_batch_equals_sequential(self, figure1_index, workload,
                                     algorithm):
        session = SearchSession(figure1_index)
        options = SearchOptions(algorithm=algorithm)
        assert_identical(
            session.search_batch(workload, options),
            [session.search(query, options) for query in workload])


class TestKernelParity:
    """The flat kernel must not perturb the batch contract: batch ==
    sequential under ``kernel="flat"``, and the two kernels agree with
    each other on whole workloads (ISSUE satellite — the shared-scan
    consumer feeds ``push_evaluation_flat`` the same per-plan streams
    the sequential path decodes)."""

    @given(workload=st.lists(_queries(), min_size=1, max_size=6),
           kernel=st.sampled_from(["flat", "object"]))
    def test_batch_equals_sequential_under_kernel(self, figure1_index,
                                                  workload, kernel):
        session = SearchSession(figure1_index)
        options = SearchOptions(kernel=kernel)
        assert_identical(
            session.search_batch(workload, options),
            [session.search(query, options) for query in workload])

    @given(workload=st.lists(_queries(), min_size=1, max_size=6))
    def test_batch_kernels_agree(self, figure1_index, workload):
        session = SearchSession(figure1_index)
        assert_identical(
            session.search_batch(workload, SearchOptions(kernel="flat")),
            session.search_batch(workload,
                                 SearchOptions(kernel="object")))

    def test_table2_workloads_under_flat_kernel(self, table2_workloads):
        options = SearchOptions(kernel="flat")
        for name, index, queries in table2_workloads:
            session = SearchSession(index)
            assert_identical(
                session.search_batch(queries, options),
                [session.search(query, options) for query in queries])
