"""Cache invalidation: an index swap must never serve stale answers."""

from repro.index.inverted import InvertedIndex
from repro.runtime import SearchSession
from repro.tree.builder import build_tree

SMALL = ("bib", None, [
    ("article", None, [
        ("title", "xml search"),
        ("author", "Alice Cooper"),
    ]),
])

GROWN = ("bib", None, [
    ("article", None, [
        ("title", "xml search"),
        ("author", "Alice Cooper"),
    ]),
    ("article", None, [
        ("title", "xml retrieval"),
        ("author", "Bob Cooper"),
    ]),
])


def _index(spec):
    return InvertedIndex.from_tree(build_tree(spec))


class TestSwapIndex:
    def test_swap_flushes_both_caches(self):
        session = SearchSession(_index(SMALL))
        session.search("(xml cooper)")
        assert session.cache_stats()["plan_cache"]["size"] > 0
        assert session.cache_stats()["posting_cache"]["size"] > 0
        session.swap_index(_index(GROWN))
        assert session.cache_stats()["plan_cache"]["size"] == 0
        assert session.cache_stats()["posting_cache"]["size"] == 0

    def test_swap_prevents_stale_results(self):
        session = SearchSession(_index(SMALL))
        before = session.search("(xml cooper)")
        assert [result.code for result in before] == [(0,)]
        session.swap_index(_index(GROWN))
        after = session.search("(xml cooper)")
        # both articles now match (plus the cross-article bib root)
        assert {result.code for result in after} >= {(0,), (1,)}
        # and the posting slice really is the new index's
        assert len(session.postings("cooper")) == 2

    def test_lifetime_statistics_survive_swap(self):
        session = SearchSession(_index(SMALL))
        session.search("(xml cooper)")
        misses = session.cache_stats()["plan_cache"]["misses"]
        session.swap_index(_index(GROWN))
        assert session.cache_stats()["plan_cache"]["misses"] == misses

    def test_index_property_tracks_swap(self):
        grown = _index(GROWN)
        session = SearchSession(_index(SMALL))
        session.swap_index(grown)
        assert session.index is grown


class TestRebuildIndex:
    def test_rebuild_from_tree(self):
        session = SearchSession(_index(SMALL))
        session.search("(xml cooper)")
        session.rebuild_index(build_tree(GROWN))
        codes = {result.code for result in session.search("(xml cooper)")}
        assert codes >= {(0,), (1,)}


class TestInvalidate:
    def test_explicit_invalidate_flushes(self):
        session = SearchSession(_index(SMALL))
        session.search("(xml cooper)")
        session.invalidate()
        stats = session.cache_stats()
        assert stats["plan_cache"]["size"] == 0
        assert stats["posting_cache"]["size"] == 0
        # next search recompiles: a fresh miss, not a stale hit
        session.search("(xml cooper)")
        assert stats["plan_cache"]["misses"] < \
            session.cache_stats()["plan_cache"]["misses"]


class TestCorpusSession:
    def test_add_document_invalidates_corpus_session(self):
        from repro.corpus import Corpus
        corpus = Corpus()
        corpus.add_document(
            "a.xml",
            "<bib><article><title>xml search</title>"
            "<author>Alice Cooper</author></article></bib>")
        assert len(corpus.search("(xml cooper)")) == 1
        corpus.add_document(
            "b.xml",
            "<bib><article><title>xml retrieval</title>"
            "<author>Bob Cooper</author></article></bib>")
        assert len(corpus.search("(xml cooper)")) == 2
