"""Tests for the partition-lattice machinery — including every lattice
count the paper publishes in §3 (Figs. 2 and 3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (admissible_blocks, admissible_partitions,
                                bell_number, coarseness_levels,
                                component_lattice_sizes,
                                largest_sublattice_size, lattice_node_count,
                                set_partitions, stack_count)


class TestBellNumbers:
    def test_known_values(self):
        assert [bell_number(n) for n in range(8)] == \
            [1, 1, 2, 5, 15, 52, 203, 877]

    def test_paper_quote_b7(self):
        # "the full lattice for 7 keywords has 877 nodes" (§3).
        assert bell_number(7) == 877

    @given(st.integers(min_value=0, max_value=9))
    def test_matches_enumeration(self, n):
        assert sum(1 for _ in set_partitions(range(n))) == bell_number(n)


class TestSetPartitions:
    def test_partitions_of_three(self):
        parts = {frozenset(frozenset(b) for b in p)
                 for p in set_partitions("abc")}
        assert len(parts) == 5

    def test_each_partition_covers_all_items(self):
        for partition in set_partitions(range(4)):
            assert sorted(x for block in partition for x in block) == \
                [0, 1, 2, 3]

    def test_empty(self):
        assert list(set_partitions([])) == [[]]

    def test_coarseness_levels(self):
        levels = coarseness_levels(set_partitions(range(4)))
        # Stirling numbers of the second kind for n=4: 1, 7, 6, 1.
        assert levels == {1: 1, 2: 7, 3: 6, 4: 1}


class TestPaperLatticeCounts:
    """The published counts of Figs. 2 and 3."""

    def test_fig2a_full_lattice(self):
        assert lattice_node_count("(XML Query John Smith)") == 15

    def test_fig2b_one_cohesive_term(self):
        assert lattice_node_count("(XML Query (John Smith))") == 7

    def test_fig2c_two_cohesive_terms(self):
        assert lattice_node_count("((XML Query) (John Smith))") == 3

    def test_fig3_composed_lattice(self):
        query = "((XML Keyword Search) (Paul Cooper) (Mary Davis))"
        assert lattice_node_count(query) == 9

    def test_fig3_component_sizes(self):
        query = "((XML Keyword Search) (Paul Cooper) (Mary Davis))"
        # Root over three units (B3=5), then 5, 2, 2 for the terms.
        assert sorted(component_lattice_sizes(query)) == [2, 2, 5, 5]
        assert stack_count(query) == 14
        assert largest_sublattice_size(query) == 5


class TestAdmissiblePartitions:
    def test_flat_query_full_lattice(self):
        assert len(admissible_partitions("(a b c d)")) == bell_number(4)

    def test_fig2b_admissible(self):
        assert len(admissible_partitions("(XML Query (John Smith))")) == 7

    def test_admissible_blocks_fig2b(self):
        blocks = admissible_blocks("(XML Query (John Smith))")
        # X, Q, J, S, XQ, JS, XJS, QJS, XQJS with occurrence ids 0..3.
        assert frozenset([2, 3]) in blocks          # JS
        assert frozenset([0, 2, 3]) in blocks       # X + JS
        assert frozenset([0, 2]) not in blocks      # X + J alone: forbidden

    def test_every_admissible_partition_covers_occurrences(self):
        for partition in admissible_partitions("((a b) c)"):
            assert sorted(x for block in partition for x in block) == \
                [0, 1, 2]

    def test_single_keyword(self):
        assert len(admissible_partitions("(a)")) == 1


class TestRenderLattice:
    def test_fig2a_levels(self):
        from repro.core.lattice import render_lattice
        text = render_lattice("(XML Query John Smith)")
        assert "15 admissible partitions" in text
        assert "level 4:" in text and "level 1:" in text
        assert "[J, Q, S, X]" in text
        assert "[XQJS]" in text

    def test_fig2b_reduction_visible(self):
        from repro.core.lattice import render_lattice
        text = render_lattice("(XML Query (John Smith))")
        assert "7 admissible partitions" in text
        # The forbidden partition [XJ, Q, S] must not appear.
        assert "[JX, Q, S]" not in text

    def test_initials_follow_occurrences(self):
        from repro.core.lattice import render_lattice
        text = render_lattice("(alpha (beta gamma))")
        assert "[A, BG]" in text


class TestLargestSublattice:
    def test_grows_with_max_cardinality(self):
        # The Fig. 6 curve: Bell numbers of the maximum term cardinality.
        from repro.datasets.workloads import pattern_with_max_cardinality
        sizes = [
            largest_sublattice_size(pattern_with_max_cardinality(10, c))
            for c in range(2, 8)
        ]
        assert sizes == [bell_number(c) for c in range(2, 8)]
        assert sizes == sorted(sizes)
