"""Tests for the skyline semantics (the paper's §6 future work)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.core.results import Result
from repro.core.skyline import (dominates, skyline, skyline_layers,
                                skyline_search)
from repro.index.inverted import InvertedIndex
from repro.tree.builder import build_tree

from tests.conftest import Q1


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((1, 2), (1, 3))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    @given(st.lists(st.integers(0, 5), min_size=3, max_size=3).map(tuple),
           st.lists(st.integers(0, 5), min_size=3, max_size=3).map(tuple))
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))


class TestSkyline:
    def _result(self, code, vector):
        return Result(code, vector[0], vector)

    def test_dominated_results_removed(self):
        results = [
            self._result((0,), (2, 0, 2)),
            self._result((1,), (3, 1, 2)),   # dominated by (0,)? 3>2,1>0,2=2
            self._result((2,), (3, 0, 1)),   # incomparable with (0,)
        ]
        front = skyline(results)
        assert [r.code for r in front] == [(0,), (2,)]

    def test_ties_both_kept(self):
        results = [
            self._result((0,), (2, 1, 1)),
            self._result((1,), (2, 1, 1)),
        ]
        assert len(skyline(results)) == 2

    def test_equal_total_size_tie_dominance(self):
        # Same total size, but (1,) is strictly better on term 1: it must
        # eject (0,) even though (0,) sorts first by document order.
        results = [
            self._result((0,), (4, 3, 1)),
            self._result((1,), (4, 1, 1)),
        ]
        assert [r.code for r in skyline(results)] == [(1,)]

    def test_empty(self):
        assert skyline([]) == []

    @given(st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 3), st.integers(0, 3)),
        max_size=8))
    @settings(max_examples=80)
    def test_skyline_is_exactly_nondominated_set(self, vectors):
        results = [Result((i,), v[0], v) for i, v in enumerate(vectors)]
        front = {r.code for r in skyline(results)}
        for result in results:
            dominated = any(
                dominates(other.term_sizes, result.term_sizes)
                for other in results if other.code != result.code)
            assert (result.code not in front) == dominated


class TestLayers:
    def test_layers_partition_results(self):
        results = [Result((i,), s, (s,)) for i, s in enumerate([1, 2, 3])]
        layers = skyline_layers(results)
        assert [len(layer) for layer in layers] == [1, 1, 1]
        flattened = {r.code for layer in layers for r in layer}
        assert flattened == {r.code for r in results}

    def test_max_layers(self):
        results = [Result((i,), s, (s,)) for i, s in enumerate([1, 2, 3])]
        assert len(skyline_layers(results, max_layers=2)) == 2


class TestSkylineSearch:
    def test_on_figure1(self, figure1_index):
        front = skyline_search(Q1, figure1_index)
        full = evaluate(Q1, figure1_index)
        # The best-size result is always in the skyline.
        assert front[0].code == full[0].code
        assert {r.code for r in front} <= {r.code for r in full}

    def test_skyline_keeps_per_term_winners(self):
        # Two results with the same total size but different term
        # profiles: both survive (incomparable).
        tree = build_tree(("r", None, [
            ("x", None, [("a", "john smith"), ("b", "xml")]),
            ("y", None, [("c", "john"),
                         ("d", None, [("e", "smith xml")])]),
        ]))
        index = InvertedIndex.from_tree(tree)
        front = skyline_search("(xml (john smith))", index)
        assert (0,) in {r.code for r in front}
