"""Tests for size-budgeted evaluation and top-k-size search."""

from hypothesis import given, settings

from repro.core.engine import CohesiveLCA, evaluate
from repro.core.topk import search_top_k, search_within_size
from repro.index.inverted import InvertedIndex

from tests.conftest import Q1
from tests.core.test_engine_oracle import queries, trees


class TestSizeBudget:
    def test_budget_filters_exactly(self, figure1_index):
        full = evaluate(Q1, figure1_index)
        searcher = CohesiveLCA(figure1_index)
        for budget in range(0, 9):
            bounded = searcher.search(Q1, size_budget=budget)
            expected = [r for r in full if r.size <= budget]
            assert [(r.code, r.size) for r in bounded] == \
                [(r.code, r.size) for r in expected]

    def test_zero_budget(self, figure1_index):
        searcher = CohesiveLCA(figure1_index)
        assert searcher.search("(smith)", size_budget=0)[0].size == 0

    @given(trees(), queries())
    @settings(max_examples=60)
    def test_budget_is_lossless_within_bound(self, tree, query):
        index = InvertedIndex.from_tree(tree)
        full = evaluate(query, index)
        searcher = CohesiveLCA(index)
        for budget in (0, 1, 3):
            bounded = searcher.search(query, size_budget=budget)
            assert [(r.code, r.size) for r in bounded] == \
                [(r.code, r.size) for r in full if r.size <= budget]


class TestTopK:
    def test_prefix_of_full_answer(self, figure1_index):
        full = evaluate(Q1, figure1_index)
        for k in range(1, len(full) + 2):
            top = search_top_k(Q1, figure1_index, k)
            assert [(r.code, r.size) for r in top] == \
                [(r.code, r.size) for r in full[:k]]

    def test_k_zero(self, figure1_index):
        assert search_top_k(Q1, figure1_index, 0) == []

    def test_no_results(self, figure1_index):
        assert search_top_k("(zzznothere xml)", figure1_index, 3) == []

    def test_small_initial_budget_still_exact(self, figure1_index):
        top = search_top_k(Q1, figure1_index, 2, initial_budget=1)
        full = evaluate(Q1, figure1_index)
        assert [(r.code, r.size) for r in top] == \
            [(r.code, r.size) for r in full[:2]]

    @given(trees(), queries())
    @settings(max_examples=40)
    def test_topk_matches_full_prefix(self, tree, query):
        index = InvertedIndex.from_tree(tree)
        full = evaluate(query, index)
        top = search_top_k(query, index, 2)
        assert [(r.code, r.size) for r in top] == \
            [(r.code, r.size) for r in full[:2]]


class TestSearchWithinSize:
    def test_matches_budgeted_search(self, figure1_index):
        direct = search_within_size(Q1, figure1_index, 4)
        searcher = CohesiveLCA(figure1_index)
        assert direct == searcher.search(Q1, size_budget=4)
