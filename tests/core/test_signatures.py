"""Tests for query compilation to signatures."""

from repro.core.parser import parse_query
from repro.core.signatures import (NO_USAGE, compile_query,
                                   merge_breakdowns, merge_usage,
                                   usage_fits)


class TestCompile:
    def test_flat_query(self):
        compiled = compile_query(parse_query("(a b c)"))
        assert compiled.term_count == 1
        assert compiled.root.full_mask == 0b111
        assert compiled.atoms == {"a": [(0, 1)], "b": [(0, 2)],
                                  "c": [(0, 4)]}
        assert not compiled.repeated_keywords

    def test_nested_terms(self):
        compiled = compile_query(parse_query("(x (y z))"))
        assert compiled.term_count == 2
        inner = compiled.terms[1]
        assert inner.parent_id == 0
        assert inner.member_index == 1
        assert inner.full_mask == 0b11
        assert compiled.atoms["y"] == [(1, 1)]

    def test_repeated_keywords_detected(self):
        compiled = compile_query(parse_query("(a (a b))"))
        assert compiled.repeated_keywords == {"a"}
        assert compiled.atoms["a"] == [(0, 1), (1, 1)]

    def test_normalization_applied(self):
        compiled = compile_query(parse_query("(Paul COOPER)"),
                                 normalize=str.lower)
        assert set(compiled.atoms) == {"paul", "cooper"}

    def test_signature_count(self):
        # (a b): 3 subsets; (x (y z)): 3 + 3.
        assert compile_query(parse_query("(a b)")).signature_count() == 3
        assert compile_query(parse_query("(x (y z))")).signature_count() == 6


class TestUsage:
    def test_merge_empty_fast_paths(self):
        assert merge_usage(NO_USAGE, NO_USAGE) == ()
        assert merge_usage((("a", 1),), NO_USAGE) == (("a", 1),)

    def test_merge_sums(self):
        merged = merge_usage((("a", 1), ("b", 2)), (("a", 2),))
        assert merged == (("a", 3), ("b", 2))

    def test_usage_fits(self):
        assert usage_fits((("a", 2),), {"a": 2})
        assert not usage_fits((("a", 3),), {"a": 2})
        assert not usage_fits((("a", 1),), {})
        assert usage_fits(NO_USAGE, {})


class TestBreakdowns:
    def test_merge_keeps_disjoint_entries(self):
        assert merge_breakdowns((None, 3, None), (7, None, None)) == \
            (7, 3, None)

    def test_empty_breakdown_shape(self):
        compiled = compile_query(parse_query("(x (y z))"))
        assert compiled.empty_breakdown() == (None, None)
