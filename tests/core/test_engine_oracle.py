"""Property-based differential testing: engine vs. brute-force oracle.

On random small trees and random cohesive queries (with nesting and
keyword repetition), the fast stack engine must return exactly the LCAs
and exact minimum sizes the literal Def. 2/3 semantics produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.core.query import Occurrence, Query, Term
from repro.core.semantics import brute_force_evaluate
from repro.index.inverted import InvertedIndex
from repro.tree.builder import TreeBuilder

VOCAB = ["a", "b", "c", "d"]


@st.composite
def trees(draw):
    """Random tree of up to ~14 nodes over a 4-word vocabulary."""
    node_count = draw(st.integers(min_value=1, max_value=14))
    shape = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # depth step
            st.lists(st.sampled_from(VOCAB), max_size=3),  # value tokens
        ),
        min_size=node_count, max_size=node_count))
    builder = TreeBuilder()
    open_depth = 0
    for position, (step, tokens) in enumerate(shape):
        if position == 0:
            builder.start("n", " ".join(tokens) or None)
            open_depth = 1
            continue
        # Close some nodes (never the root), then open a child.
        closes = min(step, open_depth - 1)
        for _ in range(closes):
            builder.end()
            open_depth -= 1
        builder.start("n", " ".join(tokens) or None)
        open_depth += 1
    for _ in range(open_depth):
        builder.end()
    return builder.finish()


@st.composite
def queries(draw):
    """Random cohesive query with up to 4 occurrences, nesting ≤ 2."""

    def term(keyword_budget, depth):
        members = []
        remaining = keyword_budget
        while remaining > 0:
            nest = (remaining >= 2 and depth < 2 and
                    draw(st.booleans()) and draw(st.booleans()))
            if nest:
                take = draw(st.integers(min_value=2, max_value=remaining))
                members.append(term(take, depth + 1))
                remaining -= take
            else:
                members.append(Occurrence(draw(st.sampled_from(VOCAB))))
                remaining -= 1
        if len(members) == 1 and isinstance(members[0], Term):
            members.append(Occurrence(draw(st.sampled_from(VOCAB))))
        return Term(members)

    total = draw(st.integers(min_value=1, max_value=4))
    if total == 1:
        return Query(Term([Occurrence(draw(st.sampled_from(VOCAB)))]))
    return Query(term(total, 0))


@given(trees(), queries())
@settings(max_examples=150)
def test_engine_matches_oracle(tree, query):
    index = InvertedIndex.from_tree(tree)
    fast = [(r.code, r.size) for r in evaluate(query, index)]
    slow = [(r.code, r.size) for r in brute_force_evaluate(query, index)]
    assert fast == slow


@given(trees(), queries())
@settings(max_examples=60)
def test_term_size_breakdowns_are_consistent(tree, query):
    """Every result's per-term sizes must sum consistently: the root
    term's entry equals the result size, and each nested term's partial
    size is bounded by it."""
    index = InvertedIndex.from_tree(tree)
    for result in evaluate(query, index):
        assert result.term_sizes[0] == result.size
        for partial in result.term_sizes[1:]:
            assert partial is not None
            assert 0 <= partial <= result.size


@given(trees())
@settings(max_examples=60)
def test_flat_two_keyword_queries(tree):
    """Dense check of the most common query shape."""
    index = InvertedIndex.from_tree(tree)
    query = Query.flat(["a", "b"])
    fast = [(r.code, r.size) for r in evaluate(query, index)]
    slow = [(r.code, r.size) for r in brute_force_evaluate(query, index)]
    assert fast == slow
