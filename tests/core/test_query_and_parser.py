"""Tests for the cohesive query AST and parser."""

import pytest

from repro.core.parser import parse_pattern, parse_query
from repro.core.query import Occurrence, Query, Term, term_to_query
from repro.errors import QuerySyntaxError


class TestParserAccepts:
    def test_flat_query(self):
        query = parse_query("(XML John Smith)")
        assert query.keywords() == ["XML", "John", "Smith"]
        assert query.is_flat()
        assert query.term_count == 1

    def test_outer_parens_optional(self):
        assert parse_query("XML John Smith") == \
            parse_query("(XML John Smith)")

    def test_single_keyword(self):
        query = parse_query("(xml)")
        assert query.keyword_count == 1

    def test_nested_terms(self):
        query = parse_query("(XML (John Smith) (George Brown))")
        assert query.term_count == 3
        assert query.max_term_cardinality == 3

    def test_paper_grammar_example(self):
        # ((title XML) ((John Smith) author)) from §2.1.
        query = parse_query("((title XML) ((John Smith) author))")
        assert query.term_count == 4
        assert query.max_nesting_depth == 2

    def test_keyword_repetition(self):
        # (XML (John Smith) (citation (John Brown))) from §1.
        query = parse_query("(XML (John Smith) (citation (John Brown)))")
        assert query.keyword_multiplicities()["John"] == 2

    def test_redundant_outer_wrap_unwrapped(self):
        assert str(parse_query("((a b))")) == "(a b)"

    def test_str_roundtrip(self):
        text = "(XML (John Smith) (citation (George Brown)))"
        assert str(parse_query(text)) == text
        assert parse_query(str(parse_query(text))) == parse_query(text)


class TestParserRejects:
    @pytest.mark.parametrize("bad", [
        "", "()", "(a (b))", "((a))", "(a (b)",
        "(a", "a)", "(a))", "((a b) (c))",
    ])
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("(a (b))")
        assert "two members" in str(excinfo.value)


class TestQueryInspection:
    def test_term_ids_in_preorder(self):
        query = parse_query("((a b) (c (d e)))")
        assert [t.term_id for t in query.terms] == [0, 1, 2, 3]
        # Term 3 is (d e), nested in term 2.
        assert query.terms[3].parent_id == 2

    def test_occurrence_ids_left_to_right(self):
        query = parse_query("((a b) (c (d e)))")
        assert [o.keyword for o in query.occurrences] == \
            ["a", "b", "c", "d", "e"]
        assert [o.occurrence_id for o in query.occurrences] == list(range(5))

    def test_distinct_keywords_preserve_order(self):
        query = parse_query("(b a (b c))")
        assert query.distinct_keywords() == ["b", "a", "c"]

    def test_max_nesting_depth(self):
        assert parse_query("(a b)").max_nesting_depth == 0
        assert parse_query("(a (b c))").max_nesting_depth == 1
        assert parse_query("(a (b (c d)))").max_nesting_depth == 2

    def test_pattern_rendering(self):
        query = parse_query("(xx ((a b c d) (e f g h)))"
                            .replace("xx", "k1 k2"))
        assert query.pattern() == "(xx((xxxx)(xxxx)))"

    def test_flat_constructor(self):
        query = Query.flat(["a", "b"])
        assert str(query) == "(a b)"
        with pytest.raises(QuerySyntaxError):
            Query.flat([])


class TestPatterns:
    def test_parse_pattern(self):
        query = parse_pattern("(xx((xxxx)(xxxx)))")
        assert query.keyword_count == 10
        assert query.pattern() == "(xx((xxxx)(xxxx)))"

    def test_with_keywords(self):
        shape = parse_pattern("(x(xx))")
        query = shape.with_keywords(["a", "b", "c"])
        assert str(query) == "(a (b c))"

    def test_with_keywords_wrong_count_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_pattern("(xx)").with_keywords(["only"])


class TestTermToQuery:
    def test_nested_term_extracted(self):
        query = parse_query("(XML (John Smith))")
        sub = term_to_query(query.terms[1])
        assert str(sub) == "(John Smith)"
        assert sub.term_count == 1

    def test_term_structure_preserved(self):
        query = parse_query("(a ((b c) d))")
        sub = term_to_query(query.terms[1])
        assert str(sub) == "((b c) d)"
        assert sub.term_count == 2


class TestTermValidation:
    def test_empty_term_rejected(self):
        with pytest.raises(QuerySyntaxError):
            Term([])

    def test_single_member_nested_term_rejected(self):
        inner = Term([Occurrence("a"), Occurrence("b")])
        with pytest.raises(QuerySyntaxError):
            Query(Term([Term([inner])]))
