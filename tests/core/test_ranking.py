"""Tests for result ranking: Def. 3 size ranking and the §2.2 cohesive-
term vector ranking."""

import math

import pytest

from repro.core.engine import evaluate
from repro.core.ranking import (RankedResult, rank_by_size, rank_results,
                                score_results, term_weights,
                                top_size_results)
from repro.core.parser import parse_query
from repro.core.results import Result
from repro.index.inverted import InvertedIndex
from repro.tree.builder import build_tree
from tests.conftest import Q1


class TestSizeRanking:
    def test_rank_by_size(self):
        results = [Result((1,), 5), Result((0,), 2), Result((2,), 2)]
        ranked = rank_by_size(results)
        assert [r.code for r in ranked] == [(0,), (2,), (1,)]

    def test_top_size_layer(self):
        results = [Result((0,), 2), Result((2,), 2), Result((1,), 5)]
        assert {r.code for r in top_size_results(results)} == {(0,), (2,)}

    def test_top_size_empty(self):
        assert top_size_results([]) == []


class TestTermWeights:
    @pytest.fixture
    def tree(self):
        # (paul cooper) is compact (always one node); (mary davis) is
        # spread out (always two nodes far apart).
        return build_tree(("bib", None, [
            ("article", None, [
                ("author", "paul cooper"),
                ("x", None, [("y", "mary")]),
                ("z", None, [("w", "davis")]),
            ]),
            ("article", None, [
                ("author", "paul cooper"),
                ("x", None, [("y", "mary")]),
                ("z", None, [("w", "davis")]),
            ]),
        ]))

    def test_compact_terms_get_higher_weight(self, tree):
        index = InvertedIndex.from_tree(tree)
        query = parse_query("((paul cooper) (mary davis))")
        weights = term_weights(query, index)
        assert len(weights) == 3  # query itself + two nested terms
        # (paul cooper): two single-node LCAs (size 0) plus the root LCA
        # mixing the two articles (size 4) -> C = 3 / (1 + 4) = 0.6.
        assert weights[1] == pytest.approx(0.6)
        # (mary davis): LCAs at both articles (size 4) and the root
        # (size 6) -> C = 3 / (1 + 14) = 0.2, smaller: less compact.
        assert weights[2] == pytest.approx(0.2)
        assert weights[2] < weights[1]

    def test_unmatched_term_weight_zero(self, tree):
        index = InvertedIndex.from_tree(tree)
        query = parse_query("((paul cooper) (zz qq))")
        weights = term_weights(query, index)
        assert weights[2] == 0.0


class TestVectorScoring:
    def test_score_is_euclidean_norm(self):
        results = [Result((0,), 3, (3, 1, 2))]
        ranked = score_results(results, (1.0, 2.0, 0.5))
        vector = ranked[0].vector
        assert vector == (3.0, 2.0, 1.0)
        assert ranked[0].score == pytest.approx(
            math.sqrt(9 + 4 + 1))

    def test_sorted_ascending_score(self):
        results = [Result((0,), 5, (5,)), Result((1,), 1, (1,))]
        ranked = score_results(results, (1.0,))
        assert [r.code for r in ranked] == [(1,), (0,)]

    def test_rank_results_end_to_end(self, figure1_index):
        ranked = rank_results(Q1, figure1_index)
        assert isinstance(ranked[0], RankedResult)
        # The compact article (paper's node 2) outranks node 11.
        assert ranked[0].code == (0,)
        assert ranked[0].score < ranked[-1].score

    def test_rank_results_accepts_precomputed(self, figure1_index):
        results = evaluate(Q1, figure1_index)
        ranked = rank_results(Q1, figure1_index, results=results)
        assert [r.code for r in ranked] == \
            [r.code for r in rank_results(Q1, figure1_index)]
