"""Tests for the impenetrability ablation knob (Def. 2(b)(ii) off).

With ``impenetrability=False`` a term only has to be *complete* before
combining with external keywords — the subtree of its LCA is no longer
protected.  The paper's running example is the perfect probe: article
node 6 of Figure 1 (where Mary slips into the Paul/Cooper subtree) is
rejected by the cohesive semantics but accepted by the ablated one.
"""

from hypothesis import given, settings

from repro.core.engine import CohesiveLCA, evaluate
from repro.index.inverted import InvertedIndex

from tests.conftest import Q1
from tests.core.test_engine_oracle import queries, trees


class TestFigure1Ablation:
    def test_article6_reappears_without_impenetrability(self,
                                                        figure1_index):
        searcher = CohesiveLCA(figure1_index)
        strict = {r.code for r in searcher.search(Q1)}
        ablated = {r.code for r in
                   searcher.search(Q1, impenetrability=False)}
        assert (1,) not in strict
        assert (1,) in ablated

    def test_ablated_superset(self, figure1_index):
        searcher = CohesiveLCA(figure1_index)
        strict = searcher.search(Q1)
        ablated = {r.code: r.size
                   for r in searcher.search(Q1, impenetrability=False)}
        for result in strict:
            assert result.code in ablated
            assert ablated[result.code] <= result.size

    def test_flat_queries_unaffected(self, figure1_index):
        searcher = CohesiveLCA(figure1_index)
        flat = "(xml keyword search paul cooper mary davis)"
        assert searcher.search(flat) == \
            searcher.search(flat, impenetrability=False)


@given(trees(), queries())
@settings(max_examples=60)
def test_ablation_never_loses_results(tree, query):
    """Dropping a restriction can only admit more (or equal) results,
    never fewer, and never with larger minimum sizes."""
    index = InvertedIndex.from_tree(tree)
    searcher = CohesiveLCA(index)
    strict = searcher.search(query)
    ablated = {r.code: r.size
               for r in searcher.search(query, impenetrability=False)}
    for result in strict:
        assert result.code in ablated
        assert ablated[result.code] <= result.size
