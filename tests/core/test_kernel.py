"""Edge-case regressions for the flat evaluation kernel.

The differential-oracle suite covers the random bulk; this file pins
the corners that random trees rarely hit — single-node documents,
empty-result queries, keywords whose postings arrive from several
store segments, and store-side list limits — each asserted
byte-identical to the object engine (full Result equality: codes,
sizes, breakdowns, order).
"""

import pytest

from repro.core.engine import evaluate_compiled
from repro.core.kernel import (evaluate_compiled_flat,
                               evaluate_flat_on_store)
from repro.core.parser import parse_query
from repro.core.signatures import compile_query
from repro.index.inverted import InvertedIndex, Posting
from repro.index.store_v2 import (append_segment, load_index_v2,
                                  save_index_v2, save_index_v2_dedup)
from repro.runtime import SearchSession


def _both(index, text, **kwargs):
    """(flat, object) result lists for one query on one index."""
    compiled = compile_query(parse_query(text),
                             index.tokenizer.normalize)
    lists = {kw: index.postings(kw) for kw in compiled.atoms}
    return (evaluate_compiled_flat(compiled, lists, **kwargs),
            evaluate_compiled(compiled, lists, **kwargs))


class TestSingleNodeDocuments:
    def test_root_only_document(self):
        # One node, Dewey code () — the LCA is the root itself,
        # so every instance path has length 0.
        index = InvertedIndex({"a": [Posting((), 1)],
                               "b": [Posting((), 2)]})
        flat, obj = _both(index, "(a b)")
        assert flat == obj
        assert [(r.code, r.size) for r in flat] == [((), 0)]

    def test_single_keyword_single_node(self):
        index = InvertedIndex({"a": [Posting((0,), 1)]})
        flat, obj = _both(index, "(a)")
        assert flat == obj
        assert [(r.code, r.size) for r in flat] == [((0,), 0)]

    def test_single_node_store_roundtrip(self, tmp_path):
        index = InvertedIndex({"a": [Posting((), 1)]})
        path = tmp_path / "one.idx2"
        save_index_v2(index, path)
        compiled = compile_query(parse_query("(a)"),
                                 index.tokenizer.normalize)
        with load_index_v2(path) as lazy:
            assert evaluate_flat_on_store(compiled, lazy) == \
                evaluate_compiled(compiled, {"a": index.postings("a")})


class TestEmptyResults:
    def test_missing_keyword_short_circuits(self, figure1_index):
        flat, obj = _both(figure1_index, "(xml notinthetree)")
        assert flat == obj == []

    def test_empty_index(self):
        index = InvertedIndex({})
        flat, obj = _both(index, "(a b)")
        assert flat == obj == []

    def test_impossible_cohesion(self):
        # Two keywords in disjoint subtrees cohere only at the root;
        # a size budget of 1 empties the answer on both paths.
        index = InvertedIndex({"a": [Posting((0, 0), 1)],
                               "b": [Posting((1, 0), 1)]})
        flat, obj = _both(index, "(a b)", size_budget=1)
        assert flat == obj == []

    def test_empty_result_on_store(self, figure1_index, tmp_path):
        path = tmp_path / "empty.idx2"
        save_index_v2(figure1_index, path)
        compiled = compile_query(parse_query("(xml notinthetree)"),
                                 figure1_index.tokenizer.normalize)
        with load_index_v2(path) as lazy:
            assert evaluate_flat_on_store(compiled, lazy) == []


class TestMultiBlockPostings:
    """A keyword whose postings span several on-disk blocks: the
    zero-copy path must merge the per-segment views exactly like the
    lazy mapping merges decoded tuples."""

    @pytest.fixture()
    def multi_segment(self, tmp_path):
        path = tmp_path / "multi.idx2"
        save_index_v2(InvertedIndex({
            "a": [Posting((0, 0), 1), Posting((2,), 1)],
            "b": [Posting((0, 1), 1)],
        }), path)
        append_segment(path, InvertedIndex({
            "a": [Posting((0, 0), 2), Posting((1, 0), 1)],
        }))
        append_segment(path, InvertedIndex({
            "a": [Posting((3,), 4)],
            "b": [Posting((1, 1), 1)],
        }))
        return path

    def test_views_cover_every_segment(self, multi_segment):
        with load_index_v2(multi_segment) as lazy:
            assert len(lazy.block_views("a")) == 3
            assert len(lazy.block_views("b")) == 2

    def test_store_evaluation_merges_blocks(self, multi_segment):
        with load_index_v2(multi_segment) as lazy:
            compiled = compile_query(parse_query("(a b)"),
                                     lazy.tokenizer.normalize)
            lists = {kw: lazy.postings(kw) for kw in compiled.atoms}
            # Same-code frequencies summed across segments first.
            assert dict((p.code, p.frequency)
                        for p in lists["a"])[(0, 0)] == 3
            assert evaluate_flat_on_store(compiled, lazy) == \
                evaluate_compiled(compiled, lists)

    def test_list_limit_applies_after_merge(self, multi_segment):
        with load_index_v2(multi_segment) as lazy:
            compiled = compile_query(parse_query("(a b)"),
                                     lazy.tokenizer.normalize)
            for limit in (1, 2, 3, 10):
                lists = {kw: lazy.postings(kw)[:limit]
                         for kw in compiled.atoms}
                assert evaluate_flat_on_store(compiled, lazy,
                                              list_limit=limit) == \
                    evaluate_compiled(compiled, lists)

    def test_session_parity_on_multi_segment_store(self, multi_segment):
        with load_index_v2(multi_segment) as lazy:
            session = SearchSession(lazy)
            assert session.search("(a b)", kernel="flat") == \
                session.search("(a b)", kernel="object")

    def test_dedup_base_plus_appends(self, tmp_path):
        # Dedup first segment, plain appends on top: mixed flags.
        path = tmp_path / "mixed.idx2"
        base = InvertedIndex({
            "a": [Posting((r, 0), 1) for r in range(6)],
            "b": [Posting((r, 1), 1) for r in range(6)],
        })
        save_index_v2_dedup(base, path)
        append_segment(path, InvertedIndex({"a": [Posting((9,), 2)]}))
        with load_index_v2(path) as lazy:
            compiled = compile_query(parse_query("(a b)"),
                                     lazy.tokenizer.normalize)
            lists = {kw: lazy.postings(kw) for kw in compiled.atoms}
            assert evaluate_flat_on_store(compiled, lazy) == \
                evaluate_compiled(compiled, lists)
