"""Tests for witness (minimal MCT) reconstruction."""

import pytest
from hypothesis import given, settings

from repro.core.engine import evaluate
from repro.core.witness import Witness, reconstruct_witness
from repro.errors import EvaluationError
from repro.index.inverted import InvertedIndex
from repro.tree import dewey

from tests.conftest import Q1
from tests.core.test_engine_oracle import queries, trees


class TestFigure1Witness:
    def test_witness_matches_result_size(self, figure1_index):
        for result in evaluate(Q1, figure1_index):
            witness = reconstruct_witness(Q1, figure1_index, result.code)
            assert witness is not None
            assert witness.size == result.size
            assert dewey.lca_many(witness.assignment) == result.code

    def test_witness_for_non_result_is_none(self, figure1_index):
        # Paper's article node 6 is not a result: no valid embedding has
        # it as LCA.
        assert reconstruct_witness(Q1, figure1_index, (1,)) is None

    def test_mct_nodes(self, figure1_index):
        witness = reconstruct_witness(Q1, figure1_index, (0,))
        nodes = witness.mct_nodes()
        assert (0,) in nodes
        # size = number of non-root MCT nodes (each contributes its
        # parent edge).
        assert len(nodes) == witness.size + 1

    def test_no_instances_under_lca(self, figure1_index):
        assert reconstruct_witness("(smith)", figure1_index, (0,)) is None


class TestGuards:
    def test_combination_cap(self, figure1_index):
        with pytest.raises(EvaluationError):
            reconstruct_witness(
                "(paul mary paul mary paul mary paul mary)",
                figure1_index, (), max_combinations=2)


@given(trees(), queries())
@settings(max_examples=40)
def test_witness_agrees_with_engine(tree, query):
    index = InvertedIndex.from_tree(tree)
    for result in evaluate(query, index)[:3]:
        witness = reconstruct_witness(query, index, result.code)
        assert isinstance(witness, Witness)
        assert witness.size == result.size
        assert dewey.lca_many(witness.assignment) == result.code
