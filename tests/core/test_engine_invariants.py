"""Property tests for structural invariants of the evaluation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CohesiveLCA, evaluate
from repro.index.inverted import InvertedIndex
from repro.tree import dewey

from tests.core.test_engine_oracle import queries, trees


@given(trees(), queries(), st.integers(min_value=1, max_value=4))
@settings(max_examples=80)
def test_truncation_only_shrinks_results(tree, query, limit):
    """Truncating inverted lists removes instances, so it can only lose
    results — and any surviving LCA's minimum size can only grow (the
    cheapest embedding may have used a truncated instance)."""
    index = InvertedIndex.from_tree(tree)
    searcher = CohesiveLCA(index)
    full = {r.code: r.size for r in searcher.search(query)}
    truncated = searcher.search(query, list_limit=limit)
    for result in truncated:
        assert result.code in full
        assert result.size >= full[result.code]


@given(trees(), queries())
@settings(max_examples=80)
def test_results_are_common_ancestors(tree, query):
    """Every result LCA must be an ancestor-or-self of at least one
    instance of every distinct query keyword."""
    index = InvertedIndex.from_tree(tree)
    normalize = index.tokenizer.normalize
    results = evaluate(query, index)
    for result in results:
        for keyword in query.distinct_keywords():
            instances = [p.code for p in index.postings(
                normalize(keyword))]
            assert any(dewey.is_ancestor_or_self(result.code, code)
                       for code in instances)


@given(trees(), queries())
@settings(max_examples=80)
def test_sizes_bounded_by_subtree(tree, query):
    """An LCA size never exceeds (occurrences × depth below the LCA) and
    the answer is duplicate-free and Def. 3 sorted."""
    index = InvertedIndex.from_tree(tree)
    results = evaluate(query, index)
    codes = [r.code for r in results]
    assert len(codes) == len(set(codes))
    sizes = [r.size for r in results]
    assert sizes == sorted(sizes)
    depth_budget = tree.max_depth * max(1, query.keyword_count)
    for result in results:
        assert 0 <= result.size <= depth_budget


@given(trees(), queries())
@settings(max_examples=60)
def test_evaluation_is_deterministic(tree, query):
    index = InvertedIndex.from_tree(tree)
    assert evaluate(query, index) == evaluate(query, index)
