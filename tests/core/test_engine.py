"""Unit tests for the CohesiveLCA engine."""

import pytest

from repro.core.engine import (CohesiveLCA, evaluate, evaluate_on_lists,
                               merge_posting_streams)
from repro.core.parser import parse_query
from repro.index.inverted import InvertedIndex, Posting
from repro.tree.builder import build_tree
from tests.conftest import Q1


def codes_and_sizes(results):
    return [(r.code, r.size) for r in results]


class TestFigure1:
    def test_paper_facts(self, figure1_index):
        results = dict(codes_and_sizes(evaluate(Q1, figure1_index)))
        assert results[(0,)] == 3     # paper's article node 2
        assert results[(2,)] == 6     # paper's article node 11
        assert (1,) not in results    # paper's article node 6

    def test_results_sorted_by_size(self, figure1_index):
        results = evaluate(Q1, figure1_index)
        sizes = [result.size for result in results]
        assert sizes == sorted(sizes)

    def test_term_size_breakdown(self, figure1_index):
        results = evaluate(Q1, figure1_index)
        best = results[0]
        assert best.code == (0,)
        # term 0 = whole query; terms 1 and 2 are the single-author-node
        # cohesive terms.
        assert best.term_sizes[0] == 3
        assert best.term_sizes[1] == 0
        assert best.term_sizes[2] == 0


class TestBasicQueries:
    def test_single_keyword_returns_instances(self, figure1_index):
        results = evaluate("(smith)", figure1_index)
        assert codes_and_sizes(results) == [((2, 2), 0)]

    def test_empty_for_unknown_keyword(self, figure1_index):
        assert evaluate("(xml zzzznothere)", figure1_index) == []

    def test_case_insensitive(self, figure1_index):
        assert codes_and_sizes(evaluate("(SMITH)", figure1_index)) == \
            [((2, 2), 0)]

    def test_query_object_accepted(self, figure1_index):
        query = parse_query("(xml smith)")
        assert evaluate(query, figure1_index) == \
            evaluate("(xml smith)", figure1_index)

    def test_same_node_match_size_zero(self):
        tree = build_tree(("r", None, [("x", "alpha beta")]))
        index = InvertedIndex.from_tree(tree)
        assert codes_and_sizes(evaluate("(alpha beta)", index)) == \
            [((0,), 0)]

    def test_list_limit_truncates_input(self, figure1_index):
        full = evaluate("(paul)", figure1_index)
        limited = evaluate("(paul)", figure1_index, list_limit=1)
        assert len(full) == 3
        assert len(limited) == 1


class TestCohesiveFiltering:
    def test_cross_matched_names_rejected(self):
        # The paper's motivating example: (XML (John Smith) (George
        # Brown)) must not match a John Brown / George Smith paper.
        tree = build_tree(("bib", None, [
            ("article", None, [
                ("title", "xml data"),
                ("author", "john brown"),
                ("author", "george smith"),
            ]),
            ("article", None, [
                ("title", "xml search"),
                ("author", "john smith"),
                ("author", "george brown"),
            ]),
        ]))
        index = InvertedIndex.from_tree(tree)
        cohesive = evaluate("(xml (john smith) (george brown))", index)
        codes = {r.code for r in cohesive}
        assert (1,) in codes
        assert (0,) not in codes   # the cross-matched article is rejected
        assert cohesive[0].code == (1,)  # and the good article ranks first
        flat = evaluate("(xml john smith george brown)", index)
        assert {(0,), (1,)} <= {r.code for r in flat}

    def test_term_completed_at_node_blocks_combination_there(self):
        # john and smith in different children of r, xml under r too:
        # the term's LCA is r itself, so xml "slips in".
        tree = build_tree(("r", None, [
            ("a", "john"), ("b", "smith"), ("c", "xml"),
        ]))
        index = InvertedIndex.from_tree(tree)
        assert evaluate("(xml (john smith))", index) == []

    def test_completed_term_combines_at_proper_ancestor(self):
        tree = build_tree(("r", None, [
            ("grp", None, [("a", "john"), ("b", "smith")]),
            ("c", "xml"),
        ]))
        index = InvertedIndex.from_tree(tree)
        assert codes_and_sizes(evaluate("(xml (john smith))", index)) == \
            [((), 4)]

    def test_nested_terms(self):
        tree = build_tree(("r", None, [
            ("paper", None, [
                ("title", "xml"),
                ("venue", "acm conference"),
            ]),
        ]))
        index = InvertedIndex.from_tree(tree)
        results = evaluate("((xml) (acm conference))"
                           .replace("(xml)", "xml"), index)
        assert results[0].code == (0,)

    def test_repeated_keywords_need_budget(self):
        tree = build_tree(("r", None, [("x", "ha"), ("y", "ha ha")]))
        index = InvertedIndex.from_tree(tree)
        # (ha ha) on the double node alone: size 0; split: size 2.
        results = dict(codes_and_sizes(evaluate("(ha ha)", index)))
        assert results[(1,)] == 0
        assert results[()] == 2


class TestStreamMerging:
    def test_groups_by_node(self):
        lists = {
            "a": [Posting((0,), 1), Posting((1,), 2)],
            "b": [Posting((0,), 3)],
        }
        merged = list(merge_posting_streams(lists))
        assert merged == [((0,), {"a": 1, "b": 3}), ((1,), {"a": 2})]

    def test_order_is_document_order(self):
        lists = {
            "a": [Posting((1,))],
            "b": [Posting((0, 5))],
            "c": [Posting((0,))],
        }
        merged = [code for code, _ in merge_posting_streams(lists)]
        assert merged == [(0,), (0, 5), (1,)]


class TestEvaluateOnLists:
    def test_missing_list_short_circuits(self):
        query = parse_query("(a b)")
        assert evaluate_on_lists(query, {"a": [Posting((0,))]}) == []

    def test_explicit_lists(self):
        query = parse_query("(a b)")
        lists = {
            "a": [Posting((0, 0))],
            "b": [Posting((0, 1))],
        }
        results = evaluate_on_lists(query, lists)
        assert codes_and_sizes(results) == [((0,), 2)]


class TestSearcherFacade:
    def test_search_parses_strings(self, figure1_index):
        searcher = CohesiveLCA(figure1_index)
        assert searcher.search("(xml)") == searcher.search(
            parse_query("(xml)"))
