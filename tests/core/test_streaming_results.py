"""Tests for the lazy result-streaming API."""

import types

from hypothesis import given, settings

from repro.core.engine import evaluate, stream_evaluate
from repro.index.inverted import InvertedIndex

from tests.conftest import Q1
from tests.core.test_engine_oracle import queries, trees


class TestStreamEvaluate:
    def test_same_answer_set_as_search(self, figure1_index):
        streamed = sorted(stream_evaluate(Q1, figure1_index),
                          key=lambda r: r.sort_key())
        assert streamed == evaluate(Q1, figure1_index)

    def test_is_lazy(self, figure1_index):
        generator = stream_evaluate(Q1, figure1_index)
        assert isinstance(generator, types.GeneratorType)
        first = next(generator)
        assert first.size >= 0
        generator.close()

    def test_postorder_yield(self, figure1_index):
        codes = [result.code
                 for result in stream_evaluate(Q1, figure1_index)]
        # Descendants finalize before their ancestors.
        seen = set()
        for code in codes:
            for other in seen:
                assert not all(a == b for a, b in zip(code, other)) or \
                    len(code) <= len(other) or code[:len(other)] != other
            seen.add(code)
        # The document root, if present, comes last.
        if () in seen:
            assert codes[-1] == ()

    def test_each_result_once(self, figure1_index):
        codes = [result.code
                 for result in stream_evaluate(Q1, figure1_index)]
        assert len(codes) == len(set(codes))

    def test_empty_on_missing_keyword(self, figure1_index):
        assert list(stream_evaluate("(zzz xml)", figure1_index)) == []

    def test_size_budget(self, figure1_index):
        bounded = list(stream_evaluate(Q1, figure1_index, size_budget=3))
        assert {r.code for r in bounded} == \
            {r.code for r in evaluate(Q1, figure1_index) if r.size <= 3}


@given(trees(), queries())
@settings(max_examples=60)
def test_stream_matches_batch(tree, query):
    index = InvertedIndex.from_tree(tree)
    streamed = sorted(
        ((r.code, r.size) for r in stream_evaluate(query, index)))
    batch = sorted((r.code, r.size) for r in evaluate(query, index))
    assert streamed == batch
