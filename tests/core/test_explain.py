"""Tests for query explanation."""

from repro.core.explain import explain


class TestWithoutIndex:
    def test_fig3_numbers(self):
        report = explain("((XML Keyword Search) (Paul Cooper) "
                         "(Mary Davis))")
        assert report.keyword_count == 7
        assert report.full_lattice_size == 877
        assert report.reduced_lattice_size == 9
        assert report.stack_total == 14
        assert report.largest_sublattice == 5
        assert report.total_instances is None

    def test_signature_count(self):
        report = explain("(a (b c))")
        # root subsets: 3; nested subsets: 3.
        assert report.signature_count == 6

    def test_render(self):
        text = str(explain("(XML (John Smith))"))
        assert "full lattice" in text
        assert "[XML [John Smith]]" in text

    def test_repeated_keywords_counted(self):
        report = explain("(a (a b))")
        assert report.keyword_count == 3
        assert report.distinct_keywords == 2
        by_kw = {stats.keyword: stats for stats in report.keywords}
        assert by_kw["a"].occurrences == 2


class TestWithIndex:
    def test_instance_statistics(self, figure1_index):
        report = explain("(xml (paul cooper))", figure1_index)
        assert report.total_instances == \
            figure1_index.frequency("xml") + \
            figure1_index.frequency("paul") + \
            figure1_index.frequency("cooper")
        text = str(report)
        assert "instance(s)" in text

    def test_normalization_through_index(self, figure1_index):
        report = explain("(XML (PAUL Cooper))", figure1_index)
        assert report.total_instances > 0
