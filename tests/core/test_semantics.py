"""Tests for the brute-force reference semantics (the oracle itself).

The oracle is what the fast engine is tested against, so its own
behaviour is pinned here on hand-checked cases — most importantly the
worked example of the paper's Figure 1.
"""

import pytest

from repro.core.semantics import brute_force_evaluate, is_embedding
from repro.core.parser import parse_query
from repro.errors import EvaluationError
from repro.index.inverted import InvertedIndex
from repro.tree.builder import build_tree
from tests.conftest import Q1


def codes_and_sizes(results):
    return [(r.code, r.size) for r in results]


class TestFigure1:
    """The paper's stated facts about Q1 on D1 (§2.1)."""

    def test_article_2_is_result_of_size_3(self, figure1_tree):
        results = dict(codes_and_sizes(
            brute_force_evaluate(Q1, figure1_tree)))
        assert results[(0,)] == 3

    def test_article_11_is_result_of_size_6(self, figure1_tree):
        results = dict(codes_and_sizes(
            brute_force_evaluate(Q1, figure1_tree)))
        assert results[(2,)] == 6

    def test_article_6_is_not_a_result(self, figure1_tree):
        # "the article node 6 is not a result of Q1": Mary slips into the
        # subtree of Paul and Cooper.
        results = dict(codes_and_sizes(
            brute_force_evaluate(Q1, figure1_tree)))
        assert (1,) not in results

    def test_ranking_orders_node2_before_node11(self, figure1_tree):
        results = brute_force_evaluate(Q1, figure1_tree)
        positions = {r.code: i for i, r in enumerate(results)}
        assert positions[(0,)] < positions[(2,)]

    def test_flat_query_accepts_article_6(self, figure1_tree):
        # Without cohesiveness the second article IS an LCA — this is
        # exactly the imprecision the paper's semantics eliminates.
        flat = "(XML keyword search Paul Cooper Mary Davis)"
        results = dict(codes_and_sizes(
            brute_force_evaluate(flat, figure1_tree)))
        assert (1,) in results


class TestEmbeddingConditions:
    def test_repeated_keyword_needs_multiplicity(self):
        tree = build_tree(("r", None, [("a", "dog dog"), ("b", "dog")]))
        results = brute_force_evaluate("(dog dog)", tree)
        codes = {r.code for r in results}
        # Both occurrences on the double node (size 0) or split across
        # the two nodes (size 2 at the root).
        assert (0,) in codes
        assert () in codes

    def test_repeated_keyword_single_instance_insufficient(self):
        tree = build_tree(("r", None, [("a", "dog")]))
        results = brute_force_evaluate("(dog dog)", tree)
        assert results == []

    def test_single_node_term_is_exempt(self):
        # Def. 2(b)(i): a term whose occurrences all map to one node does
        # not exclude anything.
        tree = build_tree(("r", None, [("x", "john smith"), ("y", "xml")]))
        results = brute_force_evaluate("(xml (john smith))", tree)
        assert {r.code for r in results} == {()}

    def test_multi_node_term_excludes_intruders(self):
        # john...smith spread across nodes with xml inside their LCA.
        tree = build_tree(("r", None, [
            ("x", "john"), ("y", "smith xml"),
        ]))
        results = brute_force_evaluate("(xml (john smith))", tree)
        assert results == []

    def test_is_embedding_direct(self, figure1_tree):
        index = InvertedIndex.from_tree(figure1_tree)
        query = parse_query("((paul cooper) mary)")
        counts = {
            posting.code: {"paul": 1, "cooper": 1, "mary": 1}
            for keyword in ("paul", "cooper", "mary")
            for posting in index.postings(keyword)
        }
        # Paul and Cooper on node (0,1) "Paul Cooper", Mary on (0,2).
        good = [(0, 1), (0, 1), (0, 2)]
        assert is_embedding(query, good, counts)
        # Paul on (1,1) "Paul Simpson", Cooper on (1,2) "Mary Cooper":
        # their LCA is article (1,) and Mary at (1,2) is inside it.
        bad = [(1, 1), (1, 2), (1, 2)]
        assert not is_embedding(query, bad, counts)


class TestGuards:
    def test_explosion_guard(self, figure1_tree):
        with pytest.raises(EvaluationError):
            brute_force_evaluate("(paul paul paul paul paul paul paul "
                                 "paul paul paul paul paul)",
                                 figure1_tree, max_embeddings=10)

    def test_missing_keyword_returns_empty(self, figure1_tree):
        assert brute_force_evaluate("(zzz xml)", figure1_tree) == []

    def test_term_sizes_tracked(self, figure1_tree):
        results = brute_force_evaluate(Q1, figure1_tree,
                                       track_term_sizes=True)
        by_code = {r.code: r for r in results}
        sizes = by_code[(0,)].term_sizes
        # Term 0 is the whole query (size 3); the nested (Paul Cooper)
        # and (Mary Davis) terms each match single author nodes (size 0).
        assert sizes[0] == 3
        assert sizes[1] == 0 and sizes[2] == 0
