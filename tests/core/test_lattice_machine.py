"""Tests for the literal Algorithm 1 implementation (lattice machine).

The machine is the executable specification of the paper's §3; it must
agree exactly with the optimized signature engine, which in turn agrees
with the brute-force Def. 2 oracle.
"""

from hypothesis import given, settings

from repro.core.engine import evaluate
from repro.core.lattice_machine import (LatticeMachine,
                                        lattice_machine_evaluate)
from repro.core.parser import parse_query
from repro.index.inverted import InvertedIndex, Posting
from repro.tree.builder import build_tree

from tests.conftest import Q1
from tests.core.test_engine_oracle import queries, trees


def codes_and_sizes(results):
    return [(r.code, r.size) for r in results]


class TestFigure1:
    def test_matches_engine_on_q1(self, figure1_index):
        assert codes_and_sizes(lattice_machine_evaluate(
            Q1, figure1_index)) == \
            codes_and_sizes(evaluate(Q1, figure1_index))

    def test_paper_facts_directly(self, figure1_index):
        results = dict(codes_and_sizes(
            lattice_machine_evaluate(Q1, figure1_index)))
        assert results[(0,)] == 3
        assert results[(2,)] == 6
        assert (1,) not in results


class TestStructure:
    def test_stack_per_admissible_partition(self):
        machine = LatticeMachine("((XML Query) (John Smith))")
        # Fig. 2c: 5 admissible partitions (before the drawing-level
        # coalescing that yields the 3 boxes).
        assert len(machine._stacks) == 5

    def test_levels_finest_first(self):
        machine = LatticeMachine("(XML Query John Smith)")
        levels = [stack.level for stack in machine._stacks]
        assert levels == sorted(levels, reverse=True)

    def test_sink_is_single_block(self):
        machine = LatticeMachine("(a b)")
        assert machine._stacks[-1].level == 1


class TestBasicQueries:
    def test_single_keyword(self, figure1_index):
        assert codes_and_sizes(lattice_machine_evaluate(
            "(smith)", figure1_index)) == [((2, 2), 0)]

    def test_empty_when_keyword_missing(self, figure1_index):
        assert lattice_machine_evaluate("(xml zzz)", figure1_index) == []

    def test_repeated_keywords(self):
        tree = build_tree(("r", None, [("x", "ha"), ("y", "ha ha")]))
        index = InvertedIndex.from_tree(tree)
        results = dict(codes_and_sizes(
            lattice_machine_evaluate("(ha ha)", index)))
        assert results == {(1,): 0, (): 2}

    def test_run_on_explicit_lists(self):
        machine = LatticeMachine(parse_query("(a b)"))
        results = machine.run({
            "a": [Posting((0, 0))],
            "b": [Posting((0, 1))],
        })
        assert codes_and_sizes(results) == [((0,), 2)]


@given(trees(), queries())
@settings(max_examples=60)
def test_machine_matches_engine(tree, query):
    index = InvertedIndex.from_tree(tree)
    assert codes_and_sizes(lattice_machine_evaluate(query, index)) == \
        codes_and_sizes(evaluate(query, index))
