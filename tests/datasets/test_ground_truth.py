"""Tests for the ground-truth bookkeeping objects."""

import pytest

from repro.datasets.ground_truth import (GeneratedDataset, PlantedRecord,
                                         RecordingBuilder)
from repro.tree.builder import build_tree


@pytest.fixture
def dataset():
    tree = build_tree(("r", None, [("a", "x"), ("b", "y")]))
    return GeneratedDataset(
        name="toy",
        tree=tree,
        queries={"Q1": "(x)", "Q2": "(y)"},
        planted=[
            PlantedRecord("Q1", (0,), 3),
            PlantedRecord("Q1", (1,), 1),
            PlantedRecord("Q2", (1,), 2),
        ],
    )


class TestPlantedRecord:
    def test_grade_bounds(self):
        with pytest.raises(ValueError):
            PlantedRecord("Q", (), 0)
        with pytest.raises(ValueError):
            PlantedRecord("Q", (), 4)
        assert PlantedRecord("Q", (), 2).grade == 2

    def test_frozen(self):
        record = PlantedRecord("Q", (0,), 1)
        with pytest.raises(AttributeError):
            record.grade = 3


class TestGeneratedDataset:
    def test_grades_per_query(self, dataset):
        assert dataset.grades("Q1") == {(0,): 3, (1,): 1}
        assert dataset.grades("Q2") == {(1,): 2}
        assert dataset.grades("Q9") == {}

    def test_relevant_codes_with_threshold(self, dataset):
        assert dataset.relevant_codes("Q1") == {(0,), (1,)}
        assert dataset.relevant_codes("Q1", min_grade=2) == {(0,)}

    def test_query_ids(self, dataset):
        assert dataset.query_ids() == ["Q1", "Q2"]


class TestRecordingBuilder:
    def test_mark_records_code_and_grade(self):
        tree = build_tree(("r", None, [("a", None)]))
        recorder = RecordingBuilder()
        recorder.mark(tree.node((0,)), "Q1", grade=2, note="why")
        assert recorder.planted == [
            PlantedRecord("Q1", (0,), 2, "why")
        ]
