"""Tests for the schema-mimicking dataset generators.

The key guarantees the effectiveness experiments rest on:

* determinism for a given seed;
* every planted relevant record is an actual result of its query;
* top-1-size CohesiveLCA has perfect precision on every query (the
  Fig. 4 headline);
* confounders make the flat semantics imprecise (the reason the paper's
  comparison is interesting at all).
"""

import pytest

from repro.baselines import slca
from repro.core.engine import evaluate
from repro.core.parser import parse_query
from repro.core.ranking import top_size_results
from repro.datasets import (generate_baseball, generate_dblp, generate_nasa,
                            generate_psd, generate_xmark)
from repro.index.inverted import InvertedIndex

GENERATORS = [
    (generate_dblp, 60),
    (generate_psd, 50),
    (generate_nasa, 50),
    (generate_baseball, 10),
]


@pytest.fixture(scope="module", params=GENERATORS,
                ids=lambda param: param[0].__name__)
def dataset_and_index(request):
    generate, scale = request.param
    dataset = generate(scale=scale)
    return dataset, InvertedIndex.from_tree(dataset.tree)


class TestGeneratorContracts:
    def test_deterministic(self):
        first = generate_dblp(scale=20, seed=3)
        second = generate_dblp(scale=20, seed=3)
        assert len(first.tree) == len(second.tree)
        assert [n.full_text() for n in first.tree] == \
            [n.full_text() for n in second.tree]
        assert first.planted == second.planted

    def test_seed_changes_tree(self):
        assert [n.full_text() for n in generate_dblp(scale=20, seed=1).tree] \
            != [n.full_text() for n in generate_dblp(scale=20, seed=2).tree]

    def test_queries_parse(self, dataset_and_index):
        dataset, _ = dataset_and_index
        assert len(dataset.queries) == 5
        for text in dataset.queries.values():
            parse_query(text)

    def test_planted_codes_exist(self, dataset_and_index):
        dataset, _ = dataset_and_index
        assert dataset.planted
        for record in dataset.planted:
            assert record.code in dataset.tree

    def test_every_query_has_relevant_answers(self, dataset_and_index):
        dataset, _ = dataset_and_index
        for query_id in dataset.queries:
            assert dataset.relevant_codes(query_id), query_id


class TestEffectivenessGuarantees:
    def test_full_cohesive_recall_is_perfect(self, dataset_and_index):
        dataset, index = dataset_and_index
        for query_id, text in dataset.queries.items():
            returned = {r.code for r in evaluate(text, index)}
            missing = dataset.relevant_codes(query_id) - returned
            assert not missing, (query_id, missing)

    def test_top_size_precision_is_perfect(self, dataset_and_index):
        dataset, index = dataset_and_index
        for query_id, text in dataset.queries.items():
            top = {r.code
                   for r in top_size_results(evaluate(text, index))}
            false_positives = top - dataset.relevant_codes(query_id)
            assert not false_positives, (query_id, false_positives)

    def test_confounders_fool_flat_slca(self, dataset_and_index):
        # At least one query per dataset must have an SLCA result that is
        # not relevant — otherwise the comparison would be vacuous.
        dataset, index = dataset_and_index
        fooled = 0
        for query_id, text in dataset.queries.items():
            keywords = parse_query(text).distinct_keywords()
            flat = set(slca(keywords, index))
            if flat - dataset.relevant_codes(query_id):
                fooled += 1
        assert fooled >= 3


class TestShapes:
    def test_dataset_depths_ordered_like_the_paper(self):
        # Table 1: DBLP is the shallowest, XMark the deepest.
        dblp = generate_dblp(scale=30).tree.max_depth
        nasa = generate_nasa(scale=30).tree.max_depth
        xmark = generate_xmark(scale=30).tree.max_depth
        assert dblp < nasa < xmark
        assert xmark >= 10

    def test_scale_controls_size(self):
        small = generate_psd(scale=10)
        large = generate_psd(scale=40)
        assert len(large.tree) > len(small.tree)

    def test_xmark_has_no_effectiveness_queries(self):
        dataset = generate_xmark(scale=10)
        assert dataset.queries == {}
        assert dataset.planted == []

    def test_grades_within_scale(self, dataset_and_index):
        dataset, _ = dataset_and_index
        for record in dataset.planted:
            assert 1 <= record.grade <= 3
