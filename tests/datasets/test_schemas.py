"""Schema-shape tests for the generators (the Table 1 contract).

The generators stand in for the real datasets, so their structural
vocabulary must stay faithful: these tests pin the label paths each
schema promises (docs/DATASETS.md).
"""

import pytest

from repro.datasets import (generate_baseball, generate_dblp,
                            generate_nasa, generate_psd, generate_xmark)
from repro.index.catalog import Catalog


@pytest.fixture(scope="module")
def catalogs():
    return {
        "dblp": Catalog(generate_dblp(scale=40).tree),
        "psd": Catalog(generate_psd(scale=40).tree),
        "nasa": Catalog(generate_nasa(scale=40).tree),
        "baseball": Catalog(generate_baseball(scale=8).tree),
        "xmark": Catalog(generate_xmark(scale=40).tree),
    }


EXPECTED_PATHS = {
    "dblp": [
        "bib/article/title",
        "bib/article/author",
        "bib/article/journal",
        "bib/article/references/article/title",
    ],
    "psd": [
        "ProteinDatabase/ProteinEntry/protein/name",
        "ProteinDatabase/ProteinEntry/organism/source",
        "ProteinDatabase/ProteinEntry/genetics/gene",
        "ProteinDatabase/ProteinEntry/reference/refinfo/title",
        "ProteinDatabase/ProteinEntry/sequence",
    ],
    "nasa": [
        "datasets/dataset/title",
        "datasets/dataset/keywords/keyword",
        "datasets/dataset/descriptions/description/para",
        "datasets/dataset/history/date/year",
        "datasets/dataset/reference/source/other/author",
        "datasets/dataset/tables/table/tableHead/fields/field/name",
    ],
    "baseball": [
        "season/league/division/team/team_name",
        "season/league/division/team/player/surname",
        "season/league/division/team/player/position",
        "season/league/division/team/player/errors",
    ],
    "xmark": [
        "site/regions/africa/item/name",
        "site/people/person/address/city",
        "site/open_auctions/open_auction/bidder/increase",
        "site/open_auctions/open_auction/annotation/description/parlist"
        "/listitem/parlist/listitem/text/keyword",
        "site/closed_auctions/closed_auction/price",
        "site/categories/category/name",
    ],
}


@pytest.mark.parametrize("name", sorted(EXPECTED_PATHS))
def test_promised_label_paths_exist(catalogs, name):
    catalog = catalogs[name]
    for path in EXPECTED_PATHS[name]:
        assert path in catalog.label_paths, path


def test_vocabulary_sizes_are_small(catalogs):
    # Table 1: dozens of labels, at most a few hundred label paths.
    for name, catalog in catalogs.items():
        assert len(catalog.labels) < 60, name
        assert len(catalog.label_paths) < 200, name


def test_xmark_deep_chain_is_populated(catalogs):
    deep = ("site/open_auctions/open_auction/annotation/description/"
            "parlist/listitem/parlist/listitem/text/keyword")
    assert catalogs["xmark"].path_count(deep) > 0
