"""Tests for the efficiency workloads of §4.3."""

import random

import pytest

from repro.core.lattice import bell_number, largest_sublattice_size
from repro.core.parser import parse_pattern
from repro.datasets import generate_dblp
from repro.datasets.workloads import (EFFICIENCY_PATTERNS,
                                      frequent_keywords, instantiate,
                                      pattern_with_max_cardinality,
                                      workload)
from repro.errors import EvaluationError
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def index():
    return InvertedIndex.from_tree(generate_dblp(scale=60).tree)


class TestPatternTables:
    @pytest.mark.parametrize("size", sorted(EFFICIENCY_PATTERNS))
    def test_ten_patterns_per_size(self, size):
        assert len(EFFICIENCY_PATTERNS[size]) == 10

    @pytest.mark.parametrize("size", sorted(EFFICIENCY_PATTERNS))
    def test_patterns_have_declared_size(self, size):
        for pattern in EFFICIENCY_PATTERNS[size]:
            assert parse_pattern(pattern).keyword_count == size

    @pytest.mark.parametrize("size", sorted(EFFICIENCY_PATTERNS))
    def test_patterns_vary_cardinality_and_nesting(self, size):
        shapes = [parse_pattern(p) for p in EFFICIENCY_PATTERNS[size]]
        assert len({q.max_term_cardinality for q in shapes}) >= 3
        assert len({q.max_nesting_depth for q in shapes}) >= 2


class TestCardinalityBuilder:
    @pytest.mark.parametrize("keywords", [10, 15, 20])
    @pytest.mark.parametrize("cardinality", range(2, 8))
    def test_exact_cardinality(self, keywords, cardinality):
        query = pattern_with_max_cardinality(keywords, cardinality)
        assert query.keyword_count == keywords
        assert query.max_term_cardinality == cardinality

    def test_sublattice_grows_as_bell(self):
        sizes = [largest_sublattice_size(
            pattern_with_max_cardinality(12, c)) for c in range(2, 7)]
        assert sizes == [bell_number(c) for c in range(2, 7)]

    def test_invalid_inputs(self):
        with pytest.raises(EvaluationError):
            pattern_with_max_cardinality(5, 1)
        with pytest.raises(EvaluationError):
            pattern_with_max_cardinality(3, 4)


class TestInstantiation:
    def test_frequent_keywords_are_frequent(self, index):
        keywords = frequent_keywords(index, 5,
                                     rng=random.Random(1))
        cutoff = sorted((index.frequency(k) for k in index.keywords()),
                        reverse=True)[30]
        for keyword in keywords:
            assert index.frequency(keyword) >= cutoff

    def test_instantiate_fills_pattern(self, index):
        query = instantiate("(xx(xx))", index, rng=random.Random(2))
        assert query.keyword_count == 4
        assert query.pattern() == "(xx(xx))"

    def test_workload_sizes(self, index):
        queries = workload(6, index, queries_per_pattern=2, seed=5)
        assert len(queries) == 20
        assert all(q.keyword_count == 6 for q in queries)

    def test_workload_deterministic(self, index):
        first = [str(q) for q in workload(6, index,
                                          queries_per_pattern=1, seed=9)]
        second = [str(q) for q in workload(6, index,
                                           queries_per_pattern=1, seed=9)]
        assert first == second

    def test_workload_unknown_size_raises(self, index):
        with pytest.raises(EvaluationError):
            workload(7, index)
