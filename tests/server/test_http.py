"""The live HTTP surface: routes, errors, overload, hot swap."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import set_global_metrics
from repro.obs.tracing import set_global_tracer
from repro.runtime.options import SearchOptions
from repro.runtime.session import SearchSession
from repro.server import DELAY_ENV, SearchServer, wire

from tests.server.conftest import http_get, http_post

Q1 = "(XML keyword search (Paul Cooper) (Mary Davis))"


@pytest.fixture()
def server(store_path):
    session = SearchSession.from_store(store_path)
    with SearchServer(session, index_path=store_path,
                      watchdog_interval=None) as live:
        yield live


class TestRoutes:
    @pytest.mark.parametrize("query", [Q1, "(XML search)", "(Mary Davis)"])
    def test_search_validates_against_schema(self, server, query):
        status, body, _ = http_post(server.url + "/search",
                                    {"query": query})
        assert status == 200
        wire.validate_response(body)
        assert body["schema"] == wire.WIRE_SCHEMA_VERSION
        assert body["result_count"] == len(body["results"]) > 0

    def test_search_matches_in_process_session(self, server):
        status, body, _ = http_post(server.url + "/search",
                                    {"query": Q1})
        assert status == 200
        expected = [wire.result_to_wire(row)
                    for row in server.session.search(Q1)]
        assert body["results"] == expected

    def test_search_honours_options(self, server):
        status, body, _ = http_post(
            server.url + "/search",
            {"query": "(XML search)",
             "options": {"algorithm": "slca"}})
        assert status == 200
        wire.validate_response(body)
        assert body["options"]["algorithm"] == "slca"

    def test_batch(self, server):
        status, body, _ = http_post(
            server.url + "/batch",
            {"queries": [Q1, "(XML search)"]})
        assert status == 200
        wire.validate_response(body)
        assert len(body["answers"]) == 2
        assert body["result_count"] == sum(
            len(answer) for answer in body["answers"])

    def test_explain(self, server):
        status, body = http_get(
            server.url + "/explain?q=(XML%20search)&algorithm=slca")
        assert status == 200
        wire.validate_response(body)
        assert body["profile"]["query"] == "(XML search)"

    def test_healthz(self, server):
        status, body = http_get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["inflight"] == 0
        assert body["capacity"] == server.workers + server.queue_limit
        assert body["index_swaps"] == 0
        assert body["keywords"] > 0
        assert "plan_cache" in body["caches"]

    def test_metrics_and_tracez_see_requests(self, server):
        http_post(server.url + "/search", {"query": Q1})
        status, exposition = http_get(server.url + "/metrics")
        assert status == 200
        assert "repro_server_requests_total 1" in exposition
        assert "repro_server_inflight_requests 0" in exposition
        status, traces = http_get(server.url + "/tracez")
        assert status == 200
        assert any("search" in (trace["root"] or "")
                   for trace in traces)


class TestErrors:
    def test_unknown_routes_are_404(self, server):
        status, body = http_get(server.url + "/nope")
        assert status == 404
        wire.validate_response(body)
        status, body, _ = http_post(server.url + "/nope", {"x": 1})
        assert status == 404

    @pytest.mark.parametrize("raw", [
        b"{not json",
        b'{"query": "(XML)", "surprise": 1}',
        b'{"query": ""}',
        b'{"query": "(XML)", "options": {"algorithm": "quantum"}}',
    ])
    def test_bad_requests_are_400(self, server, raw):
        status, body, _ = http_post(server.url + "/search", {},
                                    raw=raw)
        assert status == 400
        wire.validate_response(body)
        assert body["status"] == 400

    def test_unbalanced_query_is_400(self, server):
        status, body, _ = http_post(server.url + "/search",
                                    {"query": "((XML)"})
        assert status == 400
        assert "error" in body

    def test_explain_without_query_is_400(self, server):
        status, body = http_get(server.url + "/explain")
        assert status == 400
        assert "q" in body["error"]


class TestOverload:
    def test_queue_overflow_sheds_with_429(self, store_path,
                                           monkeypatch):
        monkeypatch.setenv(DELAY_ENV, "300")
        session = SearchSession.from_store(store_path)
        with SearchServer(session, workers=1, queue_limit=0,
                          watchdog_interval=None) as server:
            statuses, headers = [], []
            lock = threading.Lock()

            def fire():
                status, _, hdrs = http_post(server.url + "/search",
                                            {"query": Q1})
                with lock:
                    statuses.append(status)
                    headers.append(hdrs)

            threads = [threading.Thread(target=fire)
                       for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 1
            retry = [hdrs.get("Retry-After")
                     for status, hdrs in zip(statuses, headers)
                     if status == 429]
            assert all(value == "1" for value in retry)
            # The server sheds load but keeps serving afterwards.
            monkeypatch.delenv(DELAY_ENV)
            status, body, _ = http_post(server.url + "/search",
                                        {"query": Q1})
            assert status == 200
            wire.validate_response(body)
            status, health = http_get(server.url + "/healthz")
            assert health["inflight"] == 0

    def test_timeout_is_504(self, store_path, monkeypatch):
        monkeypatch.setenv(DELAY_ENV, "500")
        session = SearchSession.from_store(store_path)
        with SearchServer(session, watchdog_interval=None) as server:
            status, body, _ = http_post(
                server.url + "/search",
                {"query": Q1, "timeout_seconds": 0.05})
            assert status == 504
            wire.validate_response(body)
            monkeypatch.delenv(DELAY_ENV)
            status, _, _ = http_post(server.url + "/search",
                                     {"query": Q1})
            assert status == 200


class TestHotSwap:
    def test_reload_under_load_drops_nothing(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          workers=4, queue_limit=32,
                          watchdog_interval=None) as server:
            baseline = server.session.search(Q1)
            expected = [wire.result_to_wire(row) for row in baseline]
            failures, lock = [], threading.Lock()
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    status, body, _ = http_post(
                        server.url + "/search", {"query": Q1})
                    if status != 200 or body["results"] != expected:
                        with lock:
                            failures.append((status, body))
                        return

            threads = [threading.Thread(target=hammer)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            swaps = 0
            for _ in range(8):
                swaps = server.reload()
            stop.set()
            for thread in threads:
                thread.join()
            assert failures == []
            assert swaps == 8
            status, health = http_get(server.url + "/healthz")
            assert health["index_swaps"] == 8
            # Post-swap results are byte-identical to the baseline.
            status, body, _ = http_post(server.url + "/search",
                                        {"query": Q1})
            assert status == 200 and body["results"] == expected

    def test_reload_without_path_is_an_error(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session,
                          watchdog_interval=None) as server:
            with pytest.raises(Exception, match="index_path"):
                server.reload()


class TestServeEntryPoint:
    def test_serve_runs_until_stop(self, store_path, capsys):
        from repro.server import serve
        stop = threading.Event()
        seen = {}

        def ready(server):
            seen["url"] = server.url
            status, body, _ = http_post(server.url + "/search",
                                        {"query": Q1})
            seen["status"] = status
            seen["results"] = body["result_count"]
            stop.set()

        runner = threading.Thread(
            target=serve,
            args=(str(store_path),),
            kwargs={"port": 0, "workers": 2, "queue_limit": 2,
                    "watchdog_interval": None,
                    "ready": ready, "stop": stop})
        runner.start()
        runner.join(timeout=30)
        assert not runner.is_alive()
        assert seen["status"] == 200 and seen["results"] > 0
        assert "serving on " + seen["url"] in capsys.readouterr().out


class TestLifecycle:
    def test_close_restores_global_registry_and_tracer(self,
                                                       store_path):
        sentinel_registry = set_global_metrics(None)
        sentinel_tracer = set_global_tracer(None)
        try:
            session = SearchSession.from_store(store_path)
            server = SearchServer(session, watchdog_interval=None)
            server.close()
            server.close()  # idempotent
            assert set_global_metrics(None) is None
            assert set_global_tracer(None) is None
        finally:
            set_global_metrics(sentinel_registry)
            set_global_tracer(sentinel_tracer)

    def test_explain_options_reach_the_profiler(self, server):
        status, body = http_get(
            server.url + "/explain?q=(XML%20search)&top_k=2")
        assert status == 200
        assert body["profile"]["options"]["top_k"] == 2

    def test_default_options_round_trip_on_the_wire(self, server):
        status, body, _ = http_post(server.url + "/search",
                                    {"query": Q1})
        assert SearchOptions.from_dict(body["options"]) \
            == SearchOptions()
