"""Server-test fixtures: an on-disk store and HTTP helpers."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.store_v2 import save_index_v2


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    from tests.conftest import FIGURE1_SPEC
    from repro.tree.builder import build_tree
    index = InvertedIndex.from_tree(build_tree(FIGURE1_SPEC))
    path = tmp_path_factory.mktemp("server") / "figure1.ckx"
    save_index_v2(index, path)
    return path


def http_get(url: str, timeout: float = 10.0):
    """(status, parsed-or-text body) of a GET; HTTP errors included."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, _decode(response)
    except urllib.error.HTTPError as error:
        return error.code, _decode(error)


def http_post(url: str, body: dict, timeout: float = 10.0,
              raw: bytes = None):
    """(status, parsed body, headers) of a JSON POST."""
    payload = raw if raw is not None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, _decode(response), response.headers
    except urllib.error.HTTPError as error:
        return error.code, _decode(error), error.headers


def _decode(response):
    raw = response.read().decode("utf-8")
    content_type = response.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return json.loads(raw)
    return raw
