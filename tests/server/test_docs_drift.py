"""docs/SERVER.md's catalogues must match the wire module.

Routes (rows prefixed ``| route:``) against
:data:`repro.server.wire.SERVER_ROUTES`, and wire fields (rows
prefixed ``| field:``) against the request/response field tuples —
both directions, so the published wire contract can be trusted.
The shared introspection catalogue (:data:`repro.obs.routes.
SHARED_INTROSPECTION_ROUTES`) must be a subset of the server's route
catalogue, so a route registered on both surfaces is always published.
"""

import re
from pathlib import Path

from repro.obs.routes import SHARED_INTROSPECTION_ROUTES
from repro.server import wire

REPO = Path(__file__).resolve().parents[2]
DOC = REPO / "docs" / "SERVER.md"

_BACKTICKED = re.compile(r"`([^`]+)`")

FIELD_CATALOGUES = (
    wire.SEARCH_REQUEST_FIELDS,
    wire.BATCH_REQUEST_FIELDS,
    wire.SEARCH_RESPONSE_FIELDS,
    wire.BATCH_RESPONSE_FIELDS,
    wire.EXPLAIN_RESPONSE_FIELDS,
    wire.ERROR_RESPONSE_FIELDS,
    wire.RESULT_FIELDS,
)


def _documented(prefix: str) -> set:
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith(f"| {prefix}:"):
            continue
        first_cell = line.split("|")[1]
        names.update(_BACKTICKED.findall(first_cell))
    return names


def _code_fields() -> set:
    names = set()
    for catalogue in FIELD_CATALOGUES:
        names.update(catalogue)
    return names


def test_every_route_is_documented():
    missing = set(wire.SERVER_ROUTES) - _documented("route")
    assert not missing, \
        f"routes in SERVER_ROUTES but absent from docs/SERVER.md's " \
        f"route catalogue: {sorted(missing)}"


def test_every_documented_route_exists_in_code():
    stale = _documented("route") - set(wire.SERVER_ROUTES)
    assert not stale, \
        f"routes documented in docs/SERVER.md but missing from " \
        f"SERVER_ROUTES: {sorted(stale)}"


def test_shared_introspection_routes_are_published_server_routes():
    missing = set(SHARED_INTROSPECTION_ROUTES) - set(wire.SERVER_ROUTES)
    assert not missing, \
        f"routes in SHARED_INTROSPECTION_ROUTES but absent from " \
        f"SERVER_ROUTES (so undocumented on the server): " \
        f"{sorted(missing)}"


def test_every_wire_field_is_documented():
    missing = _code_fields() - _documented("field")
    assert not missing, \
        f"wire fields in repro.server.wire's catalogues but absent " \
        f"from docs/SERVER.md's field tables: {sorted(missing)}"


def test_every_documented_field_exists_in_code():
    stale = _documented("field") - _code_fields()
    assert not stale, \
        f"fields documented in docs/SERVER.md but missing from the " \
        f"wire catalogues: {sorted(stale)}"


def test_schema_version_in_doc_matches_code():
    text = DOC.read_text(encoding="utf-8")
    match = re.search(r"currently \*\*(\d+)\*\*", text)
    assert match, "docs/SERVER.md must state the current wire version"
    assert int(match.group(1)) == wire.WIRE_SCHEMA_VERSION
