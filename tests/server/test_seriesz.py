"""``/seriesz`` on both HTTP surfaces: parity, filters, lifecycle."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import MetricsRegistry, TelemetryServer
from repro.obs.routes import SHARED_INTROSPECTION_ROUTES
from repro.obs.timeseries import SERIES_FIELDS, TimeSeriesStore
from repro.runtime.session import SearchSession
from repro.server import SearchServer

from tests.server.conftest import http_get, http_post

Q1 = "(XML keyword search (Paul Cooper) (Mary Davis))"


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def _raw_get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read()


def _frozen_store() -> TimeSeriesStore:
    """A deterministic store that is never started (no scrape loop)."""
    store = TimeSeriesStore(1.0, clock=FakeClock(now=777.0),
                            registry=MetricsRegistry(),
                            detector=False, probe_resources=False)
    for step in range(15):
        store.record("gauge:x", float(step), now=700.0 + step)
        store.record("counter:hits", 2.0, kind="rate",
                     now=700.0 + step)
    return store


class TestTelemetryEndpoint:
    def test_seriesz_is_byte_for_byte_the_python_api(self):
        store = _frozen_store()
        registry = MetricsRegistry()
        with TelemetryServer(registry.snapshot,
                             series_provider=lambda: store) as server:
            raw = _raw_get(server.url + "/seriesz")
            expected = json.dumps(store.as_json(), sort_keys=True,
                                  default=str).encode("utf-8")
            assert raw == expected
            # the fetch mutated nothing: a second read is identical
            assert _raw_get(server.url + "/seriesz") == raw

    def test_filters_match_the_python_api(self):
        store = _frozen_store()
        registry = MetricsRegistry()
        with TelemetryServer(registry.snapshot,
                             series_provider=lambda: store) as server:
            raw = _raw_get(server.url +
                           "/seriesz?name=gauge:x&window=5"
                           "&resolution=raw")
            expected = json.dumps(
                store.as_json(name="gauge:x", window=5.0,
                              resolution="raw"),
                sort_keys=True, default=str).encode("utf-8")
            assert raw == expected

    def test_bad_parameters_are_400(self):
        store = _frozen_store()
        registry = MetricsRegistry()
        with TelemetryServer(registry.snapshot,
                             series_provider=lambda: store) as server:
            status, body = http_get(server.url + "/seriesz?window=nope")
            assert status == 400
            assert "window" in body
            status, body = http_get(server.url + "/seriesz?window=-1")
            assert status == 400
            status, body = http_get(server.url +
                                    "/seriesz?resolution=hourly")
            assert status == 400
            assert "resolution" in body

    def test_without_a_provider_the_route_is_404(self):
        registry = MetricsRegistry()
        with TelemetryServer(registry.snapshot) as server:
            status, body = http_get(server.url + "/seriesz")
            assert status == 404


class TestSearchServer:
    def test_default_server_serves_seriesz(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as server:
            http_post(server.url + "/search", {"query": Q1})
            status, document = http_get(server.url + "/seriesz")
            assert status == 200
            assert tuple(document) == tuple(sorted(SERIES_FIELDS))
            assert document["schema"] == 1
            assert document["scrapes"] >= 1
            # no watchdog: the store probes the process itself
            assert server.timeseries.probe_resources

    def test_seriesz_parity_under_a_frozen_clock(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as server:
            http_post(server.url + "/search", {"query": Q1})
            store = server.timeseries
            store.stop()  # freeze: no background scrapes between reads
            store._clock = FakeClock(now=424242.0)
            raw = _raw_get(server.url + "/seriesz")
            expected = json.dumps(store.as_json(), sort_keys=True,
                                  default=str).encode("utf-8")
            assert raw == expected
            assert _raw_get(server.url + "/seriesz") == raw

    def test_watchdog_feeds_the_store_instead_of_self_probing(
            self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=0.05) as server:
            store = server.timeseries
            assert not store.probe_resources
            assert session._watchdog._timeseries is store
            session._watchdog.snap()
            assert "resource:rss_bytes" in store.names()

    def test_disabled_series_interval_is_404(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None,
                          series_interval=None) as server:
            assert server.timeseries is None
            status, body = http_get(server.url + "/seriesz")
            assert status == 404
            assert body["status"] == 404  # the wire-format 404 shape

    def test_close_stops_the_scrape_loop(self, store_path):
        session = SearchSession.from_store(store_path)
        server = SearchServer(session, index_path=store_path,
                              watchdog_interval=None)
        store = server.timeseries
        assert store.running
        server.close()
        assert not store.running

    def test_introspection_routes_emit_no_wide_events(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as server:
            status, _ = http_get(server.url + "/seriesz")
            assert status == 200
            assert server.flight.ring.recorded == 0


class TestSharedRouteTable:
    def test_both_surfaces_register_every_shared_route(self, store_path):
        registry = MetricsRegistry()
        store = _frozen_store()
        from repro.obs.slo import SLOEngine
        from repro.obs.flight import FlightRecorder
        engine = SLOEngine(registry=registry)
        recorder = FlightRecorder(registry=registry,
                                  traces_provider=list)
        shared = {route.split(" ", 1)[1]
                  for route in SHARED_INTROSPECTION_ROUTES}
        with TelemetryServer(registry.snapshot, slo_provider=lambda:
                             engine.as_json(),
                             debug_provider=recorder.bundle,
                             series_provider=lambda: store) as server:
            assert shared <= set(server._routes.paths)
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as live:
            assert shared <= set(live._introspection.paths)


class TestServingContext:
    def test_serving_timeseries_wires_store_watchdog_and_route(
            self, store_path):
        session = SearchSession.from_store(store_path)
        with session.serving(telemetry=True, watchdog=0.05,
                             timeseries=True) as run:
            assert run.timeseries is session.timeseries_store
            assert run.timeseries.running
            # the watchdog is the single source of resource history
            assert not run.timeseries.probe_resources
            assert run.watchdog._timeseries is run.timeseries
            session.search(Q1)
            status, document = http_get(run.telemetry.url + "/seriesz")
            assert status == 200
            assert document["schema"] == 1
        assert session.timeseries_store is None

    def test_session_console_renders_over_the_local_store(
            self, store_path):
        import io
        session = SearchSession.from_store(store_path)
        with session.serving(timeseries=0.05):
            session.search(Q1)
            session._timeseries.scrape()
            out = io.StringIO()
            assert session.console(once=True, out=out) == 1
            assert out.getvalue().startswith("cohesive-search top")
        with pytest.raises(RuntimeError):
            session.console(once=True)

    def test_standalone_timeseries_probes_resources_itself(
            self, store_path):
        session = SearchSession.from_store(store_path)
        with session.serving(timeseries=0.05) as run:
            assert run.timeseries.probe_resources
            assert run.watchdog is None
