"""``/sloz`` + ``/debugz``: parity with the Python API, breach wiring."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import (FLIGHT_BUNDLE_FIELDS, MetricsRegistry,
                       FlightRecorder, SLOEngine)
from repro.runtime.session import SearchSession
from repro.server import SearchServer

from tests.server.conftest import http_get, http_post

Q1 = "(XML keyword search (Paul Cooper) (Mary Davis))"


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def _raw_get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read()


@pytest.fixture()
def frozen(store_path):
    """A server with an injected frozen-clock SLO engine and flight
    recorder, so every document it serves is deterministic."""
    clock = FakeClock(now=123456.0)
    registry = MetricsRegistry()
    engine = SLOEngine(clock=clock, registry=registry)
    recorder = FlightRecorder(capacity=32, clock=clock,
                              registry=registry, slo=engine,
                              traces_provider=list)
    session = SearchSession.from_store(store_path)
    with SearchServer(session, index_path=store_path,
                      watchdog_interval=None, slo=engine,
                      flight=recorder) as live:
        yield live, engine, recorder, clock


class TestParity:
    def test_sloz_is_byte_for_byte_the_python_api(self, frozen):
        server, engine, _, _ = frozen
        http_post(server.url + "/search", {"query": Q1})
        raw = _raw_get(server.url + "/sloz")
        expected = json.dumps(engine.as_json(),
                              sort_keys=True).encode("utf-8")
        assert raw == expected

    def test_debugz_is_byte_for_byte_the_python_api(self, frozen):
        server, _, recorder, _ = frozen
        http_post(server.url + "/search", {"query": Q1})
        http_post(server.url + "/batch", {"queries": [Q1]})
        raw = _raw_get(server.url + "/debugz")
        expected = json.dumps(recorder.bundle(),
                              sort_keys=True).encode("utf-8")
        assert raw == expected
        # and the fetch itself mutated nothing: still byte-identical
        assert _raw_get(server.url + "/debugz") == raw

    def test_requests_flow_into_the_slo_engine_and_the_ring(self, frozen):
        server, engine, recorder, _ = frozen
        http_post(server.url + "/search", {"query": Q1})
        http_post(server.url + "/batch", {"queries": [Q1, Q1]})
        # request-level events reach the engine; the ring additionally
        # holds the session-level query/batch events
        assert engine.recorded == 2
        kinds = [event["event"] for event in recorder.ring.events()]
        assert kinds.count("request") == 2
        assert kinds.count("query") == 1
        assert kinds.count("batch") == 1
        routes = {event["route"] for event in recorder.ring.events()
                  if event["event"] == "request"}
        assert routes == {"/search", "/batch"}

    def test_introspection_routes_emit_no_wide_events(self, frozen):
        server, engine, recorder, _ = frozen
        for route in ("/healthz", "/metrics", "/tracez", "/sloz",
                      "/debugz"):
            status, _ = http_get(server.url + route)
            assert status == 200
        assert engine.recorded == 0
        assert recorder.ring.recorded == 0


class TestBreachThroughTheServer:
    def test_http_errors_burn_into_page_and_dump_a_bundle(
            self, store_path):
        """All-error traffic against a tight objective walks the
        server-attached engine into page state, which fires the flight
        recorder exactly once (then rate-limits)."""
        clock = FakeClock(now=50000.0)
        registry = MetricsRegistry()
        engine = SLOEngine(["availability 99%"], page_burn=1.0,
                           warn_burn=0.5, clock=clock,
                           registry=registry)
        recorder = FlightRecorder(capacity=32, clock=clock,
                                  registry=registry, slo=engine,
                                  traces_provider=list)
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None, slo=engine,
                          flight=recorder) as server:
            for _ in range(3):  # malformed bodies: 400 = outcome error
                status, _, _ = http_post(server.url + "/search", {},
                                         raw=b"{not json")
                assert status == 400
            assert engine.state("availability_99") == "page"
            assert engine.breaches == 1
            assert recorder.dumped == 1
            assert recorder.last_reason == "slo_page"
            status, body = http_get(server.url + "/sloz")
            assert status == 200
            assert body["breaches"] == 1
            assert body["objectives"][0]["state"] == "page"
            status, bundle = http_get(server.url + "/debugz")
            assert status == 200
            assert tuple(bundle) == tuple(sorted(FLIGHT_BUNDLE_FIELDS))
            assert bundle["dumped"] == 1
            assert bundle["slo"]["breaches"] == 1
            assert registry.counters["slo_breaches"] == 1
            assert registry.counters["flight_dumps"] == 1


class TestDefaults:
    def test_default_server_serves_sloz_and_debugz(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as server:
            http_post(server.url + "/search", {"query": Q1})
            status, sloz = http_get(server.url + "/sloz")
            assert status == 200
            assert sloz["schema"] == 1
            assert sloz["recorded"] == 1
            names = {objective["name"]
                     for objective in sloz["objectives"]}
            assert names == {"availability_99_9", "latency_p99_50ms"}
            status, bundle = http_get(server.url + "/debugz")
            assert status == 200
            assert bundle["schema"] == 1
            assert bundle["event_stats"]["recorded"] >= 2

    def test_disabled_slo_and_flight_are_404(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None, slo=False,
                          flight=False) as server:
            for route in ("/sloz", "/debugz"):
                status, _ = http_get(server.url + route)
                assert status == 404

    def test_healthz_reports_generation_and_inflight(self, store_path):
        session = SearchSession.from_store(store_path)
        with SearchServer(session, index_path=store_path,
                          watchdog_interval=None) as server:
            status, body = http_get(server.url + "/healthz")
            assert status == 200
            assert body["index_generation"] == 0
            assert body["inflight_queries"] == 0
            server.reload()
            status, body = http_get(server.url + "/healthz")
            assert body["index_generation"] == 1
