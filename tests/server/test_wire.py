"""The versioned wire format: round-trips, parsing, validation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ranking import RankedResult
from repro.core.results import Result
from repro.runtime.options import ALGORITHMS, SearchOptions, OptionsError
from repro.server import wire


def options_strategy():
    """Valid SearchOptions values across every constraint branch."""
    cohesive = st.builds(
        SearchOptions,
        algorithm=st.just("cohesive"),
        rank=st.sampled_from(["size", "vector", "skyline"]),
        top_k=st.none() | st.integers(0, 50),
        max_size=st.none() | st.integers(0, 50),
        initial_budget=st.none() | st.integers(1, 50),
        list_limit=st.none() | st.integers(0, 50),
        impenetrability=st.booleans())
    others = st.builds(
        SearchOptions,
        algorithm=st.sampled_from(
            [name for name in ALGORITHMS if name != "cohesive"]),
        list_limit=st.none() | st.integers(0, 50))
    return st.one_of(cohesive, others)


class TestOptionsRoundTrip:
    @given(options=options_strategy())
    def test_from_dict_inverts_to_dict(self, options):
        assert SearchOptions.from_dict(options.to_dict()) == options

    @given(options=options_strategy())
    def test_round_trip_survives_json(self, options):
        hop = json.loads(json.dumps(options.to_dict()))
        assert SearchOptions.from_dict(hop) == options

    def test_partial_dict_keeps_defaults(self):
        options = SearchOptions.from_dict({"algorithm": "slca"})
        assert options == SearchOptions(algorithm="slca")

    def test_unknown_key_is_rejected(self):
        with pytest.raises(OptionsError, match="unknown option"):
            SearchOptions.from_dict({"algoritm": "slca"})

    def test_non_mapping_is_rejected(self):
        with pytest.raises(OptionsError, match="mapping"):
            SearchOptions.from_dict(["cohesive"])

    def test_values_are_still_validated(self):
        with pytest.raises(OptionsError):
            SearchOptions.from_dict({"algorithm": "slca",
                                     "rank": "vector"})


class TestResultRows:
    def test_plain_result(self):
        row = wire.result_to_wire(Result((0, 2), 3, (3, 0, None)))
        assert row == {"code": "r.0.2", "size": 3,
                       "term_sizes": [3, 0, None]}

    def test_ranked_result_adds_vector_and_score(self):
        ranked = RankedResult(Result((1,), 2, (2, 1)), (0.5, 0.25), 0.559)
        row = wire.result_to_wire(ranked)
        assert row["code"] == "r.1"
        assert row["vector"] == [0.5, 0.25]
        assert row["score"] == 0.559

    def test_root_code_round_trips(self):
        row = wire.result_to_wire(Result((), 0))
        assert row["code"] == "r"


class TestRequestParsing:
    def test_search_request(self):
        raw = json.dumps({"query": "(a b)",
                          "options": {"algorithm": "slca"},
                          "timeout_seconds": 2}).encode()
        query, options, timeout = wire.parse_search_request(raw)
        assert query == "(a b)"
        assert options.algorithm == "slca"
        assert timeout == 2.0

    def test_search_request_defaults(self):
        query, options, timeout = wire.parse_search_request(
            json.dumps({"query": "(a)"}).encode())
        assert options == SearchOptions()
        assert timeout is None

    @pytest.mark.parametrize("raw", [
        b"not json",
        b"[1, 2]",
        b'{"query": ""}',
        b'{"query": 7}',
        b'{}',
        b'{"query": "(a)", "extra": 1}',
        b'{"query": "(a)", "options": {"bogus": 1}}',
        b'{"query": "(a)", "timeout_seconds": -1}',
        b'{"query": "(a)", "timeout_seconds": "soon"}',
    ])
    def test_bad_search_requests(self, raw):
        with pytest.raises(wire.WireError):
            wire.parse_search_request(raw)

    def test_batch_request(self):
        queries, options, timeout = wire.parse_batch_request(
            json.dumps({"queries": ["(a)", "(b c)"]}).encode())
        assert queries == ["(a)", "(b c)"]
        assert options == SearchOptions()

    @pytest.mark.parametrize("raw", [
        b'{"queries": []}',
        b'{"queries": "one"}',
        b'{"queries": ["(a)", ""]}',
        b'{"queries": ["(a)"], "query": "(b)"}',
    ])
    def test_bad_batch_requests(self, raw):
        with pytest.raises(wire.WireError):
            wire.parse_batch_request(raw)


class TestResponseValidation:
    def test_search_response_validates(self):
        body = wire.search_response(
            "(a  b)", SearchOptions(), [Result((0,), 1, (1,))], 0.001)
        wire.validate_response(body)
        assert body["schema"] == wire.WIRE_SCHEMA_VERSION
        assert body["query"] == "(a b)"  # canonical whitespace
        assert body["result_count"] == 1

    def test_batch_response_validates(self):
        body = wire.batch_response(
            ["(a)", "(b)"], SearchOptions(algorithm="slca"),
            [[Result((0,), 0)], []], 0.002)
        wire.validate_response(body)
        assert body["result_count"] == 1
        assert body["answers"][1] == []

    def test_error_response_validates(self):
        body = wire.error_response(429, "at capacity", retry_after=1.0)
        wire.validate_response(body)
        assert body["retry_after_seconds"] == 1.0

    def test_wrong_schema_version_is_rejected(self):
        body = wire.search_response("(a)", SearchOptions(), [], 0.0)
        body["schema"] = 99
        with pytest.raises(wire.WireError, match="schema"):
            wire.validate_response(body)

    def test_missing_field_is_rejected(self):
        body = wire.search_response("(a)", SearchOptions(), [], 0.0)
        del body["duration_seconds"]
        with pytest.raises(wire.WireError, match="missing"):
            wire.validate_response(body)

    def test_unknown_result_field_is_rejected(self):
        body = wire.search_response(
            "(a)", SearchOptions(), [Result((0,), 1)], 0.0)
        body["results"][0]["surprise"] = True
        with pytest.raises(wire.WireError, match="unknown result"):
            wire.validate_response(body)

    def test_unparseable_code_is_rejected(self):
        body = wire.search_response(
            "(a)", SearchOptions(), [Result((0,), 1)], 0.0)
        body["results"][0]["code"] = "nope!"
        with pytest.raises((wire.WireError, ValueError)):
            wire.validate_response(body)

    def test_options_in_response_must_round_trip(self):
        body = wire.search_response("(a)", SearchOptions(), [], 0.0)
        body["options"]["bogus"] = 1
        with pytest.raises(OptionsError):
            wire.validate_response(body)
