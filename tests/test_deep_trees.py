"""End-to-end robustness on trees deeper than Python's recursion limit.

Every pipeline stage is iterative (parser, builder, writer, indexer,
engine, baselines), so a 5000-level chain must flow through the whole
system without RecursionError.
"""

import sys

import pytest

from repro.core.engine import evaluate
from repro.baselines import slca
from repro.index.inverted import InvertedIndex
from repro.index.streaming import index_xml
from repro.tree.builder import TreeBuilder
from repro.xmlio.loader import load_tree
from repro.xmlio.writer import dump_tree

DEPTH = max(5000, sys.getrecursionlimit() + 2000)


@pytest.fixture(scope="module")
def deep_tree():
    builder = TreeBuilder()
    for level in range(DEPTH):
        builder.start("n", "alpha" if level == DEPTH - 2 else None)
    builder.leaf("leaf", "omega")
    for _ in range(DEPTH):
        builder.end()
    return builder.finish()


def test_build_and_stats(deep_tree):
    assert deep_tree.max_depth == DEPTH
    assert len(deep_tree) == DEPTH + 1


def test_writer_and_loader_survive(deep_tree):
    text = dump_tree(deep_tree, indent=0)
    reloaded = load_tree(text)
    assert len(reloaded) == len(deep_tree)
    assert reloaded.max_depth == deep_tree.max_depth


def test_streaming_index_survives(deep_tree):
    index = index_xml(dump_tree(deep_tree, indent=0))
    assert index.frequency("omega") == 1


def test_engine_survives(deep_tree):
    index = InvertedIndex.from_tree(deep_tree)
    results = evaluate("(alpha omega)", index)
    assert results
    # alpha sits just above the leaf's parent: the LCA is the alpha node.
    assert results[0].size == 2


def test_baseline_survives(deep_tree):
    index = InvertedIndex.from_tree(deep_tree)
    assert slca(["alpha", "omega"], index)


def test_flat_kernel_survives_and_matches(deep_tree):
    """Max-depth Dewey codes through the flat kernel: the packed-key
    path and its subtree-template cache must handle ~5000-component
    codes and stay byte-identical to the object engine."""
    from repro.core.engine import evaluate_compiled
    from repro.core.kernel import evaluate_compiled_flat
    from repro.core.signatures import compile_query
    from repro.core.parser import parse_query

    index = InvertedIndex.from_tree(deep_tree)
    compiled = compile_query(parse_query("(alpha omega)"),
                             index.tokenizer.normalize)
    lists = {kw: index.postings(kw) for kw in compiled.atoms}
    flat = evaluate_compiled_flat(compiled, lists)
    assert flat == evaluate_compiled(compiled, lists)
    assert flat and flat[0].size == 2


def test_dedup_store_survives(deep_tree, tmp_path):
    """The dedup builder walks the full posting trie iteratively; a
    deeper-than-recursion-limit chain must round-trip unchanged."""
    from repro.index.store_v2 import load_index_v2, save_index_v2_dedup

    index = InvertedIndex.from_tree(deep_tree)
    path = tmp_path / "deep.idx2"
    save_index_v2_dedup(index, path)
    with load_index_v2(path) as lazy:
        assert lazy.raw_postings() == index.raw_postings()
