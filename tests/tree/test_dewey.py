"""Unit and property tests for the Dewey-code algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tree import dewey

codes = st.lists(st.integers(min_value=0, max_value=20),
                 max_size=8).map(tuple)


class TestParseFormat:
    def test_root(self):
        assert dewey.parse("r") == ()
        assert dewey.format_code(()) == "r"

    def test_simple(self):
        assert dewey.parse("r.0.2") == (0, 2)
        assert dewey.format_code((0, 2)) == "r.0.2"

    def test_whitespace_tolerated(self):
        assert dewey.parse("  r.1 ") == (1,)

    @given(codes)
    def test_roundtrip(self, code):
        assert dewey.parse(dewey.format_code(code)) == code


class TestStructure:
    def test_depth(self):
        assert dewey.depth(()) == 0
        assert dewey.depth((3, 1, 4)) == 3

    def test_parent(self):
        assert dewey.parent((0, 1)) == (0,)

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            dewey.parent(())

    def test_child(self):
        assert dewey.child((1,), 2) == (1, 2)

    def test_child_negative_rank_raises(self):
        with pytest.raises(ValueError):
            dewey.child((), -1)

    def test_ancestors(self):
        assert list(dewey.ancestors((1, 2, 3))) == [(), (1,), (1, 2)]
        assert list(dewey.ancestors((1,), include_self=True)) == [(), (1,)]


class TestRelations:
    def test_is_ancestor_proper(self):
        assert dewey.is_ancestor((), (0,))
        assert dewey.is_ancestor((1,), (1, 5, 2))
        assert not dewey.is_ancestor((1,), (1,))
        assert not dewey.is_ancestor((1,), (2, 1))

    def test_is_ancestor_or_self(self):
        assert dewey.is_ancestor_or_self((1,), (1,))
        assert dewey.is_ancestor_or_self((1,), (1, 0))
        assert not dewey.is_ancestor_or_self((1, 0), (1,))

    @given(codes, codes)
    def test_lca_is_common_ancestor(self, a, b):
        lca = dewey.lca(a, b)
        assert dewey.is_ancestor_or_self(lca, a)
        assert dewey.is_ancestor_or_self(lca, b)

    @given(codes, codes)
    def test_lca_commutes(self, a, b):
        assert dewey.lca(a, b) == dewey.lca(b, a)

    @given(codes)
    def test_lca_idempotent(self, a):
        assert dewey.lca(a, a) == a

    def test_lca_many(self):
        assert dewey.lca_many([(0, 1), (0, 2), (0, 1, 3)]) == (0,)
        assert dewey.lca_many([(5,)]) == (5,)

    def test_lca_many_empty_raises(self):
        with pytest.raises(ValueError):
            dewey.lca_many([])

    @given(st.lists(codes, min_size=1, max_size=5))
    def test_lca_many_is_deepest_common_ancestor(self, items):
        lca = dewey.lca_many(items)
        for code in items:
            assert dewey.is_ancestor_or_self(lca, code)
        # One level deeper is no longer a common ancestor of everything.
        for code in items:
            if len(code) > len(lca):
                deeper = code[: len(lca) + 1]
                assert not all(dewey.is_ancestor_or_self(deeper, other)
                               for other in items)
                break


class TestDocumentOrder:
    def test_ancestor_sorts_before_descendant(self):
        assert (1,) < (1, 0)

    def test_preorder_of_siblings(self):
        assert (0, 5) < (1,)

    @given(codes, codes)
    def test_distance_via_lca(self, a, b):
        expected = (len(a) + len(b)
                    - 2 * dewey.common_prefix_length(a, b))
        assert dewey.distance_via_lca(a, b) == expected
