"""Tests for tree construction, Node and DataTree behaviour."""

import pytest

from repro.errors import TreeError
from repro.tree.builder import TreeBuilder, build_tree
from repro.tree.tree import DataTree


@pytest.fixture
def small_tree():
    return build_tree(("r", None, [
        ("a", "alpha", [("c", "gamma")]),
        ("b", "beta"),
    ]))


class TestTreeBuilder:
    def test_incremental_build(self):
        builder = TreeBuilder()
        builder.start("bib")
        builder.start("article")
        builder.leaf("title", "XML search")
        builder.end()
        builder.end()
        tree = builder.finish()
        assert len(tree) == 3
        assert tree.node((0, 0)).value == "XML search"

    def test_dewey_codes_follow_preorder(self, small_tree):
        codes = [node.code for node in small_tree]
        assert codes == [(), (0,), (0, 0), (1,)]

    def test_set_value_appends(self):
        builder = TreeBuilder()
        builder.start("n")
        builder.set_value("one")
        builder.set_value("two")
        builder.end()
        assert builder.finish().root.value == "one two"

    def test_unbalanced_end_raises(self):
        builder = TreeBuilder()
        with pytest.raises(TreeError):
            builder.end()

    def test_finish_with_open_nodes_raises(self):
        builder = TreeBuilder()
        builder.start("r")
        with pytest.raises(TreeError):
            builder.finish()

    def test_two_roots_raise(self):
        builder = TreeBuilder()
        builder.start("r")
        builder.end()
        with pytest.raises(TreeError):
            builder.start("r2")

    def test_empty_finish_raises(self):
        with pytest.raises(TreeError):
            TreeBuilder().finish()

    def test_bad_spec_raises(self):
        with pytest.raises(TreeError):
            build_tree((42,))
        with pytest.raises(TreeError):
            build_tree(("r", 13))


class TestNode:
    def test_full_text_includes_label_and_value(self, small_tree):
        assert small_tree.node((0,)).full_text() == "a alpha"
        # Structure-only nodes search by label alone (paper: a keyword may
        # appear in the label or the value).
        assert small_tree.root.full_text() == "r"

    def test_label_path(self, small_tree):
        assert small_tree.node((0, 0)).label_path() == "r/a/c"

    def test_iter_ancestors(self, small_tree):
        node = small_tree.node((0, 0))
        assert [n.label for n in node.iter_ancestors()] == ["a", "r"]

    def test_is_leaf_is_root(self, small_tree):
        assert small_tree.root.is_root
        assert not small_tree.root.is_leaf
        assert small_tree.node((1,)).is_leaf


class TestDataTree:
    def test_len_and_depth(self, small_tree):
        assert len(small_tree) == 4
        assert small_tree.max_depth == 2

    def test_lookup(self, small_tree):
        assert small_tree.node((1,)).label == "b"
        assert small_tree.get((9, 9)) is None
        assert (0, 0) in small_tree
        with pytest.raises(TreeError):
            small_tree.node((9,))

    def test_root_must_have_root_code(self, small_tree):
        with pytest.raises(TreeError):
            DataTree(small_tree.node((0,)))

    def test_find_by_label(self, small_tree):
        assert [n.code for n in small_tree.find_by_label("a")] == [(0,)]

    def test_lca(self, small_tree):
        assert small_tree.lca([(0, 0), (1,)]).code == ()

    def test_mct_size_counts_distinct_edges(self, small_tree):
        # Paths r->a->c and r->b share no edges: 3 edges total.
        assert small_tree.mct_size([(0, 0), (1,)]) == 3
        # Single node: zero edges.
        assert small_tree.mct_size([(0,)]) == 0
        # Nested paths counted once.
        assert small_tree.mct_size([(0,), (0, 0)]) == 1
        assert small_tree.mct_size([]) == 0

    def test_label_paths(self, small_tree):
        assert small_tree.label_paths() == {"r", "r/a", "r/a/c", "r/b"}

    def test_subtree_iteration(self, small_tree):
        labels = [n.label for n in small_tree.iter_subtree((0,))]
        assert labels == ["a", "c"]
