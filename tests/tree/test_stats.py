"""Tests for the Table-1 statistics module."""

from repro.tree.builder import build_tree
from repro.tree.stats import compute_statistics


def test_statistics_on_small_tree():
    tree = build_tree(("bib", None, [
        ("article", None, [
            ("title", "xml search"),
            ("author", "paul cooper"),
        ]),
        ("article", None, [
            ("title", "xml data"),
        ]),
    ]))
    stats = compute_statistics(tree, name="toy")
    assert stats.name == "toy"
    assert stats.node_count == 6
    assert stats.max_depth == 2
    assert stats.distinct_labels == 4  # bib, article, title, author
    assert stats.distinct_label_paths == 4
    # Keywords: bib, article, title, xml, search, author, paul, cooper,
    # data.
    assert stats.distinct_keywords == 9
    row = stats.as_row()
    assert row["# nodes"] == 6
    assert row["maximum depth"] == 2


def test_statistics_on_figure1(figure1_tree):
    stats = compute_statistics(figure1_tree, name="figure1")
    assert stats.node_count == len(figure1_tree)
    # bib/article/references/article/title is the deepest path (4 edges).
    assert stats.max_depth == figure1_tree.max_depth == 4
    assert stats.distinct_labels == 5
    assert stats.text_bytes > 0
    assert stats.total_keyword_instances >= stats.distinct_keywords
