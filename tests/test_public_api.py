"""Contract tests for the public API surface."""

import importlib
import inspect

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_core_entry_points_present(self):
        for name in ("CohesiveLCA", "evaluate", "parse_query",
                     "InvertedIndex", "load_tree", "Corpus",
                     "search_top_k", "skyline_search",
                     "reconstruct_witness", "explain",
                     "LatticeMachine", "metrics_scope", "get_metrics",
                     "configure_logging", "SearchSession",
                     "SearchOptions", "ALGORITHMS"):
            assert name in repro.__all__, name

    def test_session_facade_covers_legacy_entry_points(self):
        # The legacy functions delegate to the session facade; both
        # must stay importable from the package root.
        from repro import SearchOptions, SearchSession
        assert callable(SearchSession.search)
        assert callable(SearchSession.search_batch)
        assert SearchOptions().algorithm == "cohesive"

    def test_import_installs_no_logging_handlers(self):
        # Subprocess: handlers installed by other tests (via the CLI's
        # --log-level) must not contaminate the import-time check.
        import subprocess
        import sys
        code = ("import logging, repro; "
                "import sys; "
                "sys.exit(1 if logging.getLogger('repro').handlers "
                "else 0)")
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0


class TestDocumentation:
    SUBPACKAGES = [
        "repro.tree", "repro.xmlio", "repro.index", "repro.core",
        "repro.baselines", "repro.datasets", "repro.evaluation",
        "repro.corpus", "repro.cli", "repro.obs",
    ]

    def test_every_subpackage_documented(self):
        for name in self.SUBPACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__ and module.__doc__.strip(), name

    def test_public_callables_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__ and obj.__doc__.strip(), name


class TestErrorHierarchy:
    def test_single_base_class(self):
        from repro import errors
        for name in dir(errors):
            obj = getattr(errors, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not errors.ReproError
                    and obj.__module__ == "repro.errors"):
                assert issubclass(obj, errors.ReproError), name
