"""Query profiles (EXPLAIN) and the slow-query log."""

import json

import pytest

from repro.obs import PROFILE_SCHEMA_VERSION, QueryProfile, SlowQueryLog
from repro.runtime import SearchOptions, SearchSession

from tests.conftest import Q1


class TestSessionExplain:
    def test_profile_is_fully_populated(self, figure1_index):
        session = SearchSession(figure1_index)
        profile = session.explain(Q1)
        assert profile.kind == "query"
        assert profile.query == Q1
        assert profile.algorithm == "cohesive"
        assert profile.result_count == 3
        assert profile.duration_seconds > 0
        # per-phase wall times
        assert profile.phases.get("parse", 0) > 0
        assert profile.phases.get("stream-scan", 0) > 0
        # lattice accounting (paper §5's cost drivers)
        assert profile.lattice["max_term_cardinality"] == 5
        assert profile.lattice["reduced_nodes"] >= 1
        assert profile.lattice["stacks"] >= 1
        # input lists: every keyword with its posting count
        assert set(profile.keywords) == {"xml", "keyword", "search",
                                         "paul", "cooper", "mary", "davis"}
        assert profile.total_instances == sum(
            stats["postings"] for stats in profile.keywords.values())
        assert profile.total_instances > 0
        # cache layers report hit/miss dicts
        assert set(profile.caches) >= {"plan_cache", "posting_cache"}
        assert profile.counters["results_emitted"] == 3

    def test_explain_scores_follow_rank_mode(self, figure1_index):
        session = SearchSession(figure1_index)
        sized = session.explain(Q1)
        assert sized.top_scores == sorted(sized.top_scores)
        vector = session.explain(Q1, SearchOptions(rank="vector"))
        assert all(isinstance(score, float)
                   for score in vector.top_scores)

    def test_to_dict_is_json_ready_and_versioned(self, figure1_index):
        profile = SearchSession(figure1_index).explain(Q1)
        data = json.loads(json.dumps(profile.to_dict()))
        assert data["schema"] == PROFILE_SCHEMA_VERSION
        assert data["result_count"] == 3
        assert data["lattice"]["max_term_cardinality"] == 5
        assert data["keywords"]["davis"]["postings"] == 3

    def test_format_tree_renders_sections(self, figure1_index):
        text = SearchSession(figure1_index).explain(Q1).format_tree()
        for section in ("lattice", "input", "phases", "caches",
                        "counters"):
            assert section in text
        assert "instance(s)" in text
        assert "max_term_cardinality" in text

    def test_explain_leaves_no_registry_behind(self, figure1_index):
        from repro.obs import get_metrics
        SearchSession(figure1_index).explain(Q1)
        assert not get_metrics().enabled


class TestSlowQueryLog:
    def test_threshold_and_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=-0.1)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=0.1, capacity=0)

    def test_is_slow_boundary(self):
        log = SlowQueryLog(threshold=0.5)
        assert log.is_slow(0.5)
        assert log.is_slow(1.0)
        assert not log.is_slow(0.49)

    def test_ring_evicts_oldest(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for n in range(3):
            log.record(QueryProfile(query=f"q{n}"))
        assert log.recorded == 3  # lifetime count survives eviction
        assert len(log) == 2
        assert [profile.query for profile in log.entries()] == ["q2", "q1"]

    def test_as_json_newest_first(self):
        log = SlowQueryLog(threshold=0.0)
        log.record(QueryProfile(query="old"))
        log.record(QueryProfile(query="new"))
        payload = log.as_json()
        assert [entry["query"] for entry in payload] == ["new", "old"]
        assert payload[0]["schema"] == PROFILE_SCHEMA_VERSION

    def test_clear_keeps_lifetime_count(self):
        log = SlowQueryLog(threshold=0.0)
        log.record(QueryProfile(query="q"))
        log.clear()
        assert len(log) == 0
        assert log.recorded == 1

    def test_concurrent_recording_is_safe(self):
        """N writer threads race record() against a reader that drains
        entries()/clear(): no exceptions, no lost lifetime counts, and
        the ring never exceeds capacity."""
        import threading

        capacity = 16
        writers, per_writer = 8, 50
        log = SlowQueryLog(threshold=0.0, capacity=capacity)
        start = threading.Barrier(writers + 1)
        errors = []

        def write(worker):
            try:
                start.wait()
                for n in range(per_writer):
                    log.record(QueryProfile(query=f"w{worker}-{n}"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def churn():
            try:
                start.wait()
                for _ in range(100):
                    for profile in log.entries():
                        assert profile.query.startswith("w")
                    len(log)
                    log.as_json()
                    log.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(worker,))
                   for worker in range(writers)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert log.recorded == writers * per_writer
        assert len(log) <= capacity


class TestSessionSlowCapture:
    def test_slow_query_captured_with_full_profile(self, figure1_index):
        session = SearchSession(figure1_index)
        session.configure_slow_query_log(threshold=0.0)
        session.search(Q1)
        log = session.slow_query_log
        assert log.recorded == 1
        (profile,) = log.entries()
        assert profile.query == Q1
        assert profile.result_count == 3
        assert profile.counters["results_emitted"] == 3
        assert profile.phases.get("stream-scan", 0) > 0

    def test_fast_queries_not_captured(self, figure1_index):
        session = SearchSession(figure1_index)
        session.configure_slow_query_log(threshold=60.0)
        session.search(Q1)
        assert session.slow_query_log.recorded == 0

    def test_batch_capture_is_one_profile(self, figure1_index):
        session = SearchSession(figure1_index)
        session.configure_slow_query_log(threshold=0.0)
        session.search_batch([Q1, "(xml retrieval)"])
        (profile,) = session.slow_query_log.entries()
        assert profile.kind == "batch"
        assert "2 queries" in profile.query

    def test_event_sink_receives_query_events(self, figure1_index,
                                              tmp_path):
        from repro.obs import JsonlSink, read_jsonl
        session = SearchSession(figure1_index)
        sink = JsonlSink(tmp_path / "events.jsonl")
        session.attach_event_sink(sink)
        session.search(Q1)
        session.search_batch([Q1])
        sink.close()
        events = read_jsonl(tmp_path / "events.jsonl")
        assert [event["event"] for event in events] == ["query", "batch"]
        assert events[0]["query"] == Q1
        assert events[0]["result_count"] == 3
        assert all(event["schema"] == 1 for event in events)
