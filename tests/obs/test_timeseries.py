"""The time-series store: downsampling, bounds, anomaly wiring."""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (ANOMALY_EVENT_FIELDS, BUCKET_BYTES,
                                  DEFAULT_CAPACITY, SERIES_FIELDS,
                                  AnomalyDetector, TimeSeriesStore,
                                  counter_rates)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def tick(self, seconds=1.0):
        self.now += seconds
        return self.now


def _store(clock=None, **kwargs):
    kwargs.setdefault("detector", False)
    kwargs.setdefault("probe_resources", False)
    return TimeSeriesStore(1.0, clock=clock or FakeClock(), **kwargs)


class TestCounterRates:
    def test_rates_are_deltas_per_second(self):
        rates = counter_rates({"a": 10, "b": 4}, {"a": 4}, 2.0)
        assert rates == {"a": 3.0, "b": 2.0}

    def test_negative_deltas_are_dropped(self):
        assert counter_rates({"a": 1}, {"a": 5}, 1.0) == {}

    def test_zero_elapsed_yields_nothing(self):
        assert counter_rates({"a": 1}, {}, 0.0) == {}


class TestScrape:
    def test_counters_become_rates_only_after_two_scrapes(self):
        registry = MetricsRegistry()
        registry.inc("hits", 5)
        clock = FakeClock()
        store = _store(clock, registry=registry)
        store.scrape()
        assert "counter:hits" not in store.names()
        registry.inc("hits", 3)
        clock.tick(2.0)
        store.scrape()
        [bucket] = store.series("counter:hits")
        assert bucket["last"] == pytest.approx(1.5)  # 3 over 2 s

    def test_gauges_and_histogram_quantiles_are_levels(self):
        registry = MetricsRegistry()
        registry.gauge_set("inflight", 7)
        for value in (0.01, 0.02, 0.03):
            registry.observe("search_seconds", value)
        store = _store(registry=registry)
        store.scrape()
        assert store.series("gauge:inflight")[0]["last"] == 7.0
        names = store.names()
        assert "hist:search_seconds:p50" in names
        assert "hist:search_seconds:p99" in names

    def test_resource_probes_record_when_enabled(self):
        store = TimeSeriesStore(1.0, clock=FakeClock(),
                                registry=MetricsRegistry(),
                                detector=False, probe_resources=True)
        store.scrape()
        assert "resource:threads" in store.names()

    def test_record_resources_is_the_watchdog_feed(self):
        store = _store()
        store.record_resources({"timestamp": 1000.0,
                                "rss_bytes": 4096, "open_fds": 12,
                                "threads": 3,
                                "tracemalloc_peak_bytes": None})
        assert store.series("resource:rss_bytes")[0]["start"] == 1000.0
        assert store.series("resource:open_fds")[0]["last"] == 12.0

    def test_scrape_loop_runs_on_a_daemon_thread(self):
        store = TimeSeriesStore(0.01, registry=MetricsRegistry(),
                                detector=False, probe_resources=True)
        with store:
            assert store.running
            thread = store._thread
            assert thread.daemon
            assert thread.name == "repro-timeseries"
        assert not store.running
        assert store.scrapes >= 1


class TestDownsampling:
    def test_coarse_buckets_carry_count_min_max_mean_last(self):
        clock = FakeClock(now=100.0)
        store = _store(clock)
        for value in (2.0, 8.0, 5.0):
            store.record("gauge:x", value)
            clock.tick(1.0)
        [bucket] = store.series("gauge:x", resolution="10s")
        assert bucket["start"] == 100.0
        assert bucket["count"] == 3
        assert bucket["min"] == 2.0
        assert bucket["max"] == 8.0
        assert bucket["mean"] == pytest.approx(5.0)
        assert bucket["last"] == 5.0

    def test_samples_split_into_aligned_buckets(self):
        clock = FakeClock(now=95.0)
        store = _store(clock)
        for _ in range(10):  # 95..104 spans the 90 and 100 buckets
            store.record("gauge:x", 1.0)
            clock.tick(1.0)
        tens = store.series("gauge:x", resolution="10s")
        assert [bucket["start"] for bucket in tens] == [90.0, 100.0]
        assert [bucket["count"] for bucket in tens] == [5, 5]
        minutes = store.series("gauge:x", resolution="1m")
        assert [bucket["start"] for bucket in minutes] == [60.0]
        assert minutes[0]["count"] == 10
        assert len(store.series("gauge:x")) == 10  # raw: one each

    def test_stale_samples_keep_coarse_rings_monotonic(self):
        store = _store()
        store.record("gauge:x", 1.0, now=100.0)
        store.record("gauge:x", 9.0, now=50.0)  # clock skew
        [bucket] = store.series("gauge:x", resolution="10s")
        assert bucket["start"] == 100.0
        assert bucket["count"] == 1
        assert len(store.series("gauge:x")) == 2  # raw keeps both

    def test_window_filters_old_buckets(self):
        clock = FakeClock(now=0.0)
        store = _store(clock)
        for _ in range(120):
            store.record("gauge:x", 1.0)
            clock.tick(1.0)
        recent = store.series("gauge:x", window=10.0)
        assert len(recent) == 10
        assert all(bucket["start"] >= clock.now - 10.0
                   for bucket in recent)


class TestBounds:
    def test_rings_evict_under_long_runs(self):
        clock = FakeClock(now=0.0)
        store = _store(clock, capacity={"raw": 20, "10s": 5, "1m": 3})
        for _ in range(1000):
            store.record("gauge:x", 1.0)
            clock.tick(1.0)
        assert len(store.series("gauge:x")) == 20
        assert len(store.series("gauge:x", resolution="10s")) == 5
        assert len(store.series("gauge:x", resolution="1m")) == 3
        # evicted oldest first: the newest buckets survive
        assert store.series("gauge:x")[-1]["start"] == 999.0

    def test_max_series_drops_excess_names(self):
        store = _store(max_series=2)
        assert store.record("gauge:a", 1.0) == 1
        assert store.record("gauge:b", 1.0) == 1
        assert store.record("gauge:c", 1.0) == 0
        assert store.dropped == 1
        assert len(store) == 2
        assert store.as_json(now=0.0)["dropped"] == 1

    def test_memory_bound_formula_and_real_footprint(self):
        capacity = {"raw": 30, "10s": 10, "1m": 5}
        clock = FakeClock(now=0.0)
        store = _store(clock, capacity=capacity, max_series=8)
        bound = store.memory_bound()
        assert bound == (8 * 45 + 256) * BUCKET_BYTES
        for _ in range(500):  # saturate every ring of every series
            for index in range(8):
                store.record(f"gauge:g{index}", float(index))
            clock.tick(1.0)
        retained = sum(
            sys.getsizeof(bucket) +
            sum(sys.getsizeof(slot) for slot in bucket)
            for series in store._series.values()
            for ring in series.rings.values()
            for bucket in ring)
        assert retained <= bound

    def test_default_capacity_is_the_documented_shape(self):
        assert DEFAULT_CAPACITY == {"raw": 300, "10s": 180, "1m": 120}
        store = _store()
        assert store.memory_bound() == \
            (512 * 600 + 256) * BUCKET_BYTES

    def test_capacity_overrides_are_validated(self):
        with pytest.raises(ValueError):
            _store(capacity={"hourly": 10})
        with pytest.raises(ValueError):
            _store(capacity={"raw": 0})
        with pytest.raises(ValueError):
            TimeSeriesStore(0.0)


class TestDocument:
    def test_as_json_is_deterministic_and_catalogued(self):
        registry = MetricsRegistry()
        registry.gauge_set("inflight", 1)
        clock = FakeClock()
        store = _store(clock, registry=registry)
        store.scrape()
        document = store.as_json()
        assert tuple(document) == SERIES_FIELDS
        assert document["schema"] == 1
        assert document["generated_at"] == clock.now
        assert json.dumps(document, sort_keys=True) == \
            json.dumps(store.as_json(), sort_keys=True)

    def test_name_window_resolution_filters(self):
        clock = FakeClock(now=0.0)
        store = _store(clock)
        for _ in range(30):
            store.record("gauge:a", 1.0)
            store.record("gauge:b", 2.0)
            clock.tick(1.0)
        only_a = store.as_json(name="gauge:a")
        assert list(only_a["series"]) == ["gauge:a"]
        coarse = store.as_json(resolution="1m")
        assert list(coarse["series"]["gauge:a"]["points"]) == ["1m"]
        recent = store.as_json(window=5.0)
        for entry in recent["series"].values():
            for buckets in entry["points"].values():
                assert all(bucket["start"] >= clock.now - 5.0
                           for bucket in buckets)
        assert store.as_json(name="gauge:zzz")["series"] == {}
        with pytest.raises(ValueError):
            store.as_json(resolution="hourly")

    def test_series_kinds_distinguish_rates_from_levels(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.gauge_set("level", 1)
        clock = FakeClock()
        store = _store(clock, registry=registry)
        store.scrape()
        clock.tick(1.0)
        registry.inc("hits")
        store.scrape()
        document = store.as_json()
        assert document["series"]["counter:hits"]["kind"] == "rate"
        assert document["series"]["gauge:level"]["kind"] == "level"


class TestAnomalyDetector:
    def test_cold_start_never_fires(self):
        detector = AnomalyDetector(min_samples=30)
        for _ in range(29):
            assert detector.check("s", 1.0) is None
        assert detector.check("s", 1e9) is None  # 30th sample trains
        assert detector.flagged == 0

    def test_outlier_fires_after_warmup(self):
        detector = AnomalyDetector(min_samples=10)
        for index in range(20):
            assert detector.check("s", float(index % 3)) is None
        finding = detector.check("s", 1000.0)
        assert finding is not None
        assert abs(finding["score"]) >= detector.threshold
        assert detector.flagged == 1

    def test_flat_window_flags_any_departure(self):
        detector = AnomalyDetector(min_samples=5)
        for _ in range(10):
            detector.check("s", 4.0)
        assert detector.check("s", 4.0) is None
        finding = detector.check("s", 5.0)
        assert finding is not None

    def test_series_are_independent(self):
        detector = AnomalyDetector(min_samples=5)
        for _ in range(10):
            detector.check("a", 1.0)
        assert detector.check("b", 1000.0) is None  # b is cold

    def test_parameters_are_validated(self):
        with pytest.raises(ValueError):
            AnomalyDetector(alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            AnomalyDetector(min_samples=1)


class _Sink:
    def __init__(self):
        self.events = []

    def emit(self, kind, payload):
        self.events.append((kind, payload))


class _Flight:
    def __init__(self):
        self.reasons = []

    def trigger(self, reason):
        self.reasons.append(reason)


class TestAnomalyWiring:
    def _flagging_store(self):
        registry = MetricsRegistry()
        sink = _Sink()
        flight = _Flight()
        store = TimeSeriesStore(
            1.0, clock=FakeClock(), registry=registry,
            detector=AnomalyDetector(min_samples=5),
            sink=sink, flight=flight, probe_resources=False)
        for _ in range(10):
            store.record("gauge:x", 2.0)
        store.record("gauge:x", 500.0)
        return registry, sink, flight, store

    def test_anomaly_counts_emits_and_triggers(self):
        registry, sink, flight, store = self._flagging_store()
        assert registry.counters["timeseries_anomalies"] == 1
        [(kind, payload)] = sink.events
        assert kind == "series_anomaly"
        assert tuple(sorted(payload)) == tuple(sorted(
            ANOMALY_EVENT_FIELDS))
        assert payload["series"] == "gauge:x"
        assert payload["value"] == 500.0
        assert flight.reasons == ["series_anomaly"]

    def test_anomalous_buckets_are_marked_at_every_resolution(self):
        _, _, _, store = self._flagging_store()
        assert store.series("gauge:x")[-1]["anomaly"] is True
        assert store.series("gauge:x", resolution="10s")[-1]["anomaly"] \
            is True
        [anomaly] = store.anomalies()
        assert anomaly["series"] == "gauge:x"
        assert store.as_json()["anomalies"] == [anomaly]

    def test_anomaly_ring_is_bounded(self):
        store = TimeSeriesStore(
            1.0, clock=FakeClock(), registry=MetricsRegistry(),
            detector=AnomalyDetector(min_samples=2, window=4),
            probe_resources=False, anomaly_capacity=3)
        for _ in range(6):
            store.record("gauge:x", 1.0)
        for step in range(10):  # alternate far-off values keep firing
            store.record("gauge:x", 1000.0 * (step + 1))
            for _ in range(6):
                store.record("gauge:x", 1.0)
        assert len(store.anomalies()) <= 3

    def test_detector_check_is_thread_safe(self):
        detector = AnomalyDetector(min_samples=2)
        errors = []

        def feed():
            try:
                for index in range(500):
                    detector.check("shared", float(index % 7))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=feed) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestReportRates:
    def test_format_report_appends_counter_rates(self):
        from repro.obs.report import format_report
        previous = {"counters": {"hits": 10}}
        snapshot = {"counters": {"hits": 30, "born": 4}}
        report = format_report(snapshot, previous=previous,
                               interval=2.0)
        assert "(+10.0/s)" in report   # (30 - 10) / 2
        assert "(+2.0/s)" in report    # born mid-window: 4 / 2

    def test_format_report_without_previous_is_unchanged(self):
        from repro.obs.report import format_report
        report = format_report({"counters": {"hits": 3}})
        assert "/s)" not in report
