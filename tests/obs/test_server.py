"""The live telemetry endpoint: /metrics, /healthz, /profilez,
/tracez, /flamez and /resourcez."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (MetricsRegistry, QueryProfile, TelemetryServer,
                       parse_openmetrics)
from repro.obs.server import OPENMETRICS_CONTENT_TYPE
from repro.runtime import SearchSession

from tests.conftest import Q1


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.inc("postings_consumed", 10)
    for value in (0.001, 0.002, 0.050):
        registry.observe("search_seconds", value)
    return registry


class TestTelemetryServer:
    def test_port_zero_picks_a_free_port(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            assert server.port > 0
            assert server.url.endswith(str(server.port))

    def test_metrics_route_serves_valid_openmetrics(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == OPENMETRICS_CONTENT_TYPE
        families = parse_openmetrics(body)  # validating parser
        assert families["repro_postings_consumed"]["samples"] == \
            [("_total", {}, 10.0)]
        quantiles = {labels.get("quantile"): value
                     for suffix, labels, value in
                     families["repro_search_seconds"]["samples"]
                     if suffix == ""}
        assert quantiles["0.99"] == pytest.approx(0.050)

    def test_healthz_merges_provider(self, registry):
        with TelemetryServer(registry.snapshot,
                             health_provider=lambda: {"keywords": 9}
                             ) as server:
            status, content_type, body = _get(server.url + "/healthz")
        assert status == 200
        assert content_type == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["keywords"] == 9
        assert health["uptime_seconds"] >= 0

    def test_profilez_serves_profiles(self, registry):
        profiles = [QueryProfile(query="(a b)", result_count=4).to_dict()]
        with TelemetryServer(registry.snapshot,
                             profiles_provider=lambda: profiles) as server:
            status, _, body = _get(server.url + "/profilez")
        assert status == 200
        (entry,) = json.loads(body)
        assert entry["query"] == "(a b)"
        assert entry["result_count"] == 4

    def test_profilez_defaults_to_empty(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            _, _, body = _get(server.url + "/profilez")
        assert json.loads(body) == []

    def test_tracez_serves_provider_digests(self, registry):
        digests = [{"trace_id": "abc", "root": "search", "spans": 5,
                    "pids": [1234], "duration_seconds": 0.01}]
        with TelemetryServer(registry.snapshot,
                             traces_provider=lambda: digests) as server:
            status, content_type, body = _get(server.url + "/tracez")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == digests

    def test_tracez_defaults_to_empty(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            _, _, body = _get(server.url + "/tracez")
        assert json.loads(body) == []

    def test_flamez_serves_collapsed_profile(self, registry):
        collapsed = "a;b;c 5\na;b 2"
        with TelemetryServer(registry.snapshot,
                             flame_provider=lambda: collapsed) as server:
            status, content_type, body = _get(server.url + "/flamez")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert body == collapsed

    def test_flamez_defaults_to_empty_profile(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            status, _, body = _get(server.url + "/flamez")
        assert status == 200
        assert body == ""

    def test_resourcez_serves_watchdog_document(self, registry):
        from repro.obs import ResourceWatchdog
        watchdog = ResourceWatchdog(registry=registry)
        watchdog.snap()
        with TelemetryServer(registry.snapshot,
                             resources_provider=watchdog.as_json
                             ) as server:
            status, content_type, body = _get(server.url + "/resourcez")
        assert status == 200
        assert content_type == "application/json"
        document = json.loads(body)
        assert document["sampled"] == 1
        (snapshot,) = document["snapshots"]
        assert snapshot["threads"] >= 1

    def test_resourcez_defaults_to_empty_document(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            _, _, body = _get(server.url + "/resourcez")
        assert json.loads(body) == {"snapshots": [], "breaches": []}

    def test_unknown_route_is_404(self, registry):
        with TelemetryServer(registry.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404
            body = excinfo.value.read().decode("utf-8")
            assert "/flamez" in body and "/resourcez" in body

    def test_close_is_idempotent(self, registry):
        server = TelemetryServer(registry.snapshot)
        server.close()
        server.close()


class TestSessionTelemetry:
    def test_serve_telemetry_end_to_end(self, figure1_index):
        session = SearchSession(figure1_index)
        session.configure_slow_query_log(threshold=0.0)
        try:
            server = session.serve_telemetry(port=0)
            session.search(Q1)

            _, _, body = _get(server.url + "/metrics")
            families = parse_openmetrics(body)
            assert families["repro_results_emitted"]["samples"] == \
                [("_total", {}, 3.0)]
            quantile_labels = {labels.get("quantile")
                               for _, labels, _ in
                               families["repro_search_seconds"]["samples"]}
            assert "0.99" in quantile_labels

            _, _, body = _get(server.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["keywords"] == len(figure1_index)
            assert health["slow_queries"]["recorded"] == 1

            _, _, body = _get(server.url + "/profilez")
            (profile,) = json.loads(body)
            assert profile["query"] == Q1
            assert profile["result_count"] == 3
            assert profile["counters"]["results_emitted"] == 3
        finally:
            session.close_telemetry()

    def test_tracez_reflects_traced_searches(self, figure1_index):
        # The endpoint's provider runs on the server's handler thread,
        # so only a process-global tracer is visible to it (scoped
        # tracers are context-local by design).
        from repro.obs import Tracer, set_global_tracer
        session = SearchSession(figure1_index)
        tracer = Tracer()
        set_global_tracer(tracer)
        try:
            server = session.serve_telemetry(port=0)
            session.search(Q1)
            _, _, body = _get(server.url + "/tracez")
            (digest,) = json.loads(body)
            assert digest["root"] == "search"
            assert digest["spans"] >= 1
            # With the tracer gone the endpoint reads empty again.
            set_global_tracer(None)
            _, _, body = _get(server.url + "/tracez")
            assert json.loads(body) == []
        finally:
            set_global_tracer(None)
            tracer.close()
            session.close_telemetry()

    def test_resourcez_has_history_from_the_auto_watchdog(
            self, figure1_index):
        import time
        session = SearchSession(figure1_index)
        try:
            server = session.serve_telemetry(port=0,
                                             watchdog_interval=0.05)
            session.search(Q1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                _, _, body = _get(server.url + "/resourcez")
                document = json.loads(body)
                latest = document["snapshots"][-1]
                if document["sampled"] >= 2 and latest["gauges"]:
                    break
                time.sleep(0.02)
            assert document["sampled"] >= 2
            assert latest["threads"] >= 1
            assert "plan_cache_entries" in latest["gauges"]
        finally:
            session.close_telemetry()
        assert session._watchdog is None

    def test_serve_telemetry_can_opt_out_of_the_watchdog(
            self, figure1_index):
        session = SearchSession(figure1_index)
        try:
            server = session.serve_telemetry(port=0,
                                             watchdog_interval=None)
            _, _, body = _get(server.url + "/resourcez")
            assert json.loads(body) == {"snapshots": [],
                                        "breaches": []}
        finally:
            session.close_telemetry()

    def test_flamez_serves_the_session_profiler(self, figure1_index):
        session = SearchSession(figure1_index)
        try:
            server = session.serve_telemetry(port=0)
            with session.profile_cpu(hz=500):
                import time
                deadline = time.monotonic() + 0.2
                while time.monotonic() < deadline:
                    session.search(Q1)
            _, _, body = _get(server.url + "/flamez")
            assert "repro" in body  # engine frames dominate
        finally:
            session.close_telemetry()

    def test_close_telemetry_removes_global_registry(self, figure1_index):
        from repro.obs import get_metrics
        session = SearchSession(figure1_index)
        session.serve_telemetry(port=0)
        assert get_metrics().enabled
        session.close_telemetry()
        assert not get_metrics().enabled

    def test_explicit_registry_is_respected(self, figure1_index,
                                            metrics_off):
        registry = MetricsRegistry()
        registry.inc("results_emitted", 123)
        session = SearchSession(figure1_index)
        try:
            server = session.serve_telemetry(port=0, registry=registry)
            _, _, body = _get(server.url + "/metrics")
            assert "repro_results_emitted_total 123" in body
        finally:
            session.close_telemetry()


@pytest.fixture
def metrics_off():
    """Guard: these tests must not leak a process-global registry."""
    from repro.obs import get_metrics
    yield
    assert not get_metrics().enabled
