"""Query-scoped tracing: span trees, cross-process propagation,
memory accounting and the Chrome trace export."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus import Corpus
from repro.index.inverted import InvertedIndex
from repro.obs import metrics_scope, to_chrome_trace, write_chrome_trace
from repro.obs.tracing import (NULL_TRACER, TRACE_ATTRIBUTES, Tracer,
                               TraceSpan, activate_wire,
                               current_trace_wire, get_tracer,
                               recent_traces, set_global_tracer,
                               trace_scope)
from repro.runtime import SearchSession

from tests.conftest import Q1

REQUIRED_ATTRS = ("mem_alloc_delta", "posting_decode_bytes")

DOC_A = """
<bib>
  <article>
    <title>cohesive keyword search</title>
    <author>paul cooper</author>
  </article>
</bib>
"""

DOC_B = """
<bib>
  <article>
    <title>keyword search on tree data</title>
    <author>mary davis</author>
  </article>
</bib>
"""


@pytest.fixture
def session(figure1_index):
    return SearchSession(figure1_index)


def _corpus():
    corpus = Corpus()
    corpus.add_document("a.xml", DOC_A)
    corpus.add_document("b.xml", DOC_B)
    return corpus


# -- activation --------------------------------------------------------------

def test_default_tracer_is_null():
    tracer = get_tracer()
    assert tracer is NULL_TRACER
    assert not tracer.enabled
    with tracer.span("anything") as span:
        assert span is None
    assert tracer.spans() == []


def test_trace_scope_activates_and_restores():
    with trace_scope() as tracer:
        assert get_tracer() is tracer
        assert tracer.enabled
    assert get_tracer() is NULL_TRACER


def test_global_tracer_fallback_and_scope_precedence():
    tracer = Tracer()
    assert set_global_tracer(tracer) is None
    try:
        assert get_tracer() is tracer
        with trace_scope() as scoped:
            assert get_tracer() is scoped
        assert get_tracer() is tracer
    finally:
        assert set_global_tracer(None) is tracer
    assert get_tracer() is NULL_TRACER


# -- span trees from the session ---------------------------------------------

def test_search_produces_one_trace_tree(session):
    with trace_scope() as tracer:
        results = session.search(Q1)
    spans = tracer.spans()
    assert results
    roots = [span for span in spans if span.is_root]
    assert [root.name for root in roots] == ["search"]
    root = roots[0]
    assert root.attrs["query"] == Q1
    assert root.attrs["algorithm"] == "cohesive"
    assert root.attrs["result_count"] == len(results)
    assert {span.trace_id for span in spans} == {root.trace_id}
    # Phase detail rides along as children of the query span.
    children = [span for span in spans
                if span.parent_id == root.span_id]
    assert {"parse", "lattice-build", "stream-scan"} <= \
        {span.name for span in children}
    for span in spans:
        for attr in REQUIRED_ATTRS:
            assert attr in span.attrs, (span.name, attr)
        assert span.attrs.keys() <= set(TRACE_ATTRIBUTES)


def test_each_search_roots_a_distinct_trace(session):
    with trace_scope() as tracer:
        session.search(Q1)
        session.search(Q1)
    assert len(tracer.trace_ids()) == 2


def test_search_nests_under_ambient_span(session):
    with trace_scope() as tracer:
        with tracer.span("workload") as outer:
            session.search(Q1)
    spans = tracer.spans()
    roots = [span for span in spans if span.is_root]
    assert [root.name for root in roots] == ["workload"]
    search = next(span for span in spans if span.name == "search")
    assert search.parent_id == outer.span_id
    assert search.trace_id == outer.trace_id


def test_search_batch_span_counts_queries_and_results(session):
    with trace_scope() as tracer:
        answers = session.search_batch([Q1, Q1])
    root = next(span for span in tracer.spans() if span.is_root)
    assert root.name == "search-batch"
    assert root.attrs["queries"] == 2
    assert root.attrs["result_count"] == sum(len(a) for a in answers)


def test_stream_span_closes_with_result_count(session):
    with trace_scope() as tracer:
        results = list(session.stream(Q1))
    root = next(span for span in tracer.spans() if span.is_root)
    assert root.name == "stream"
    assert root.attrs["result_count"] == len(results)


def test_traced_search_results_match_untraced(session):
    untraced = session.search(Q1)
    with trace_scope():
        traced = session.search(Q1)
    assert traced == untraced


def test_counter_deltas_with_ambient_registry(session):
    with metrics_scope() as registry, trace_scope() as tracer:
        session.search(Q1)
        session.search(Q1)  # second run hits the plan/posting caches
    second = [span for span in tracer.spans() if span.name == "search"][1]
    assert second.attrs["plan_cache_hits"] == 1
    assert second.attrs["posting_cache_hits"] > 0
    # One increment per live span exit (adopted phase spans were
    # already accounted for when their registry recorded them).
    assert registry.counter("trace_spans_recorded") == 2


def test_memory_accounting_measures_allocations():
    with trace_scope(memory=True) as tracer:
        with tracer.span("alloc") as span:
            blob = [bytearray(1024) for _ in range(64)]
        assert len(blob) == 64
    assert span.attrs["mem_alloc_delta"] > 0
    assert span.attrs["mem_peak"] > 0


def test_memory_off_stamps_zeroes():
    with trace_scope() as tracer:
        with tracer.span("alloc"):
            list(range(1000))
    span = tracer.spans()[0]
    assert span.attrs["mem_alloc_delta"] == 0
    assert span.attrs["mem_peak"] == 0


def test_capacity_bounds_retained_spans():
    tracer = Tracer(capacity=4)
    with trace_scope(tracer):
        for number in range(10):
            with tracer.span(f"s{number}"):
                pass
    names = [span.name for span in tracer.spans()]
    assert names == ["s6", "s7", "s8", "s9"]
    tracer.close()


# -- wire serialization ------------------------------------------------------

def test_wire_round_trip():
    assert current_trace_wire() is None
    with trace_scope(memory=False) as tracer:
        with tracer.span("parent") as parent:
            wire = current_trace_wire()
            assert wire == {"trace_id": parent.trace_id,
                            "span_id": parent.span_id,
                            "memory": False}
            json.loads(json.dumps(wire))  # plain-picklable / JSON-safe
    worker = Tracer()
    with trace_scope(worker), activate_wire(wire):
        with worker.span("child"):
            pass
    child = worker.spans()[0]
    assert child.trace_id == parent.trace_id
    assert child.parent_id == parent.span_id
    worker.close()


def test_adopt_folds_worker_span_dicts():
    with trace_scope() as tracer:
        with tracer.span("parent") as parent:
            shipped = TraceSpan("remote", parent.trace_id, "abc123",
                                parent.span_id, parent.start_wall,
                                0.001, pid=99999, tid=1).as_dict()
        tracer.adopt([shipped])
    remote = next(span for span in tracer.spans()
                  if span.name == "remote")
    assert remote.pid == 99999
    assert remote.trace_id == parent.trace_id


# -- cross-process propagation -----------------------------------------------

def test_corpus_parallel_search_is_one_trace_across_pids():
    import os
    corpus = _corpus()
    with trace_scope(memory=True) as tracer:
        corpus.search("(keyword search)", workers=2)
    spans = tracer.spans()
    roots = [span for span in spans if span.is_root]
    assert [root.name for root in roots] == ["corpus-search"]
    root = roots[0]
    assert root.attrs["workers"] == 2
    # One trace id across every span, parent and workers alike.
    assert {span.trace_id for span in spans} == {root.trace_id}
    pids = {span.pid for span in spans}
    assert len(pids) >= 2, "worker spans must carry their own pid"
    assert os.getpid() in pids
    # Every worker shard span hangs under the corpus-search span.
    shards = [span for span in spans if span.name == "shard"]
    assert len(shards) == 2
    assert {span.parent_id for span in shards} == {root.span_id}
    assert {span.attrs["shard"] for span in shards} == {0, 1}
    assert all(span.pid != os.getpid() for span in shards)
    # The acceptance bar: EVERY span carries the accounting attrs.
    for span in spans:
        for attr in REQUIRED_ATTRS:
            assert attr in span.attrs, (span.name, attr)
    # Worker session spans are children of their shard span.
    searches = [span for span in spans if span.name == "search"]
    assert {span.parent_id for span in searches} <= \
        {span.span_id for span in shards}


def test_corpus_parallel_chrome_export_spans_two_process_lanes():
    corpus = _corpus()
    with trace_scope(memory=True) as tracer:
        corpus.search("(keyword search)", workers=2)
    document = to_chrome_trace(tracer.spans())
    events = [event for event in document["traceEvents"]
              if event["ph"] == "X"]
    assert len({event["pid"] for event in events}) >= 2
    assert {event["args"]["trace_id"] for event in events} == \
        {tracer.spans()[0].trace_id}


def test_corpus_search_untraced_records_nothing():
    corpus = _corpus()
    results = corpus.search("(keyword search)", workers=2)
    assert get_tracer() is NULL_TRACER
    assert len(results) == 2


def test_corpus_parallel_results_unchanged_by_tracing():
    corpus = _corpus()
    plain = corpus.search("(keyword search)", workers=2)
    with trace_scope(memory=True):
        traced = corpus.search("(keyword search)", workers=2)
    assert [(row.document, row.result) for row in traced] == \
        [(row.document, row.result) for row in plain]


# -- reading: trace_ids, summaries, /tracez ----------------------------------

def test_trace_ids_newest_first(session):
    with trace_scope() as tracer:
        session.search(Q1)
        first = tracer.trace_ids()[0]
        session.search(Q1)
        ids = tracer.trace_ids()
    assert len(ids) == 2
    assert ids[-1] == first


def test_summaries_digest_shape(session):
    with trace_scope() as tracer:
        session.search(Q1)
        digests = tracer.summaries()
        assert recent_traces() == digests
    assert len(digests) == 1
    digest = digests[0]
    assert digest["root"] == "search"
    assert digest["spans"] == len(tracer.spans())
    assert digest["pids"] == [tracer.spans()[0].pid]
    assert digest["duration_seconds"] > 0


def test_recent_traces_empty_when_tracing_off():
    assert recent_traces() == []


def test_clear_drops_spans(session):
    with trace_scope() as tracer:
        session.search(Q1)
        assert tracer.spans()
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.trace_ids() == []


# -- Chrome trace export properties ------------------------------------------

def _strict_nesting_per_lane(events) -> None:
    """Complete events on one (pid, tid) lane must nest strictly:
    sorted by start, every event either contains the next or ends
    before it starts."""
    lanes = {}
    for event in events:
        lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    for lane in lanes.values():
        lane.sort(key=lambda event: (event["ts"], -event["dur"]))
        stack = []
        for event in lane:
            while stack and \
                    event["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                enclosing = stack[-1]
                assert event["ts"] + event["dur"] <= \
                    enclosing["ts"] + enclosing["dur"] + 1e-6, \
                    (event["name"], enclosing["name"])
            stack.append(event)


def test_chrome_trace_round_trips_and_nests(session, tmp_path):
    with trace_scope(memory=True) as tracer:
        session.search(Q1)
        session.search_batch([Q1])
    path = write_chrome_trace(tmp_path / "trace.json", tracer.spans())
    document = json.loads(path.read_text(encoding="utf-8"))
    events = [event for event in document["traceEvents"]
              if event["ph"] == "X"]
    assert len(events) == len(tracer.spans())
    for event in events:
        assert event["cat"] == "repro"
        assert event["dur"] >= 0
        for attr in REQUIRED_ATTRS:
            assert attr in event["args"]
    metadata = [event for event in document["traceEvents"]
                if event["ph"] == "M"]
    assert [event["name"] for event in metadata] == ["process_name"]
    _strict_nesting_per_lane(events)


@st.composite
def _span_forests(draw):
    """Random single-process span forests with correct nesting."""
    tracer = Tracer()
    spans = []

    def grow(depth):
        count = draw(st.integers(0, 3 if depth == 0 else 2))
        for _ in range(count):
            with tracer.span(draw(st.sampled_from(
                    ["parse", "scan", "rank", "merge"]))) as span:
                spans.append(span)
                if depth < 2:
                    grow(depth + 1)

    grow(0)
    tracer.close()
    return spans


@given(_span_forests())
def test_chrome_trace_property_round_trip_and_lane_nesting(spans):
    document = json.loads(json.dumps(to_chrome_trace(spans)))
    events = [event for event in document["traceEvents"]
              if event["ph"] == "X"]
    assert len(events) == len(spans)
    assert [event["ts"] for event in events] == \
        sorted(event["ts"] for event in events)
    _strict_nesting_per_lane(events)


def test_chrome_trace_accepts_wire_dicts():
    span = TraceSpan("shard", "t" * 16, "s" * 16, None, 100.0, 0.5,
                     pid=7, tid=7, attrs={"shard": 1})
    document = to_chrome_trace([span.as_dict()])
    events = [event for event in document["traceEvents"]
              if event["ph"] == "X"]
    assert events[0]["args"]["shard"] == 1
    assert events[0]["ts"] == pytest.approx(100.0 * 1e6)
    assert events[0]["dur"] == pytest.approx(0.5 * 1e6)
