"""Exporters: name sanitizing, OpenMetrics round-trips, JSONL sink,
Chrome trace-event JSON."""

import json
import re
import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (CHROME_TRACE_CATEGORY, EVENT_SCHEMA_VERSION,
                       JsonlSink, MetricsRegistry, Tracer, merge_jsonl,
                       parse_openmetrics, read_jsonl,
                       sanitize_metric_name, to_chrome_trace,
                       to_openmetrics, write_chrome_trace)

OPENMETRICS_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


class TestSanitizeMetricName:
    def test_valid_names_pass_through(self):
        for name in ("postings_consumed", "repro:phase", "_private"):
            assert sanitize_metric_name(name) == name

    def test_hyphens_and_dots_become_underscores(self):
        assert sanitize_metric_name("index-open") == "index_open"
        assert sanitize_metric_name("runtime.session") == "runtime_session"
        assert sanitize_metric_name("a b/c") == "a_b_c"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("95th_percentile") == "_95th_percentile"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            sanitize_metric_name("")

    @given(st.text(min_size=1, max_size=40))
    def test_output_always_matches_charset(self, name):
        assert OPENMETRICS_NAME.fullmatch(sanitize_metric_name(name))


class TestToOpenMetrics:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.inc("postings_consumed", 42)
        registry.inc("results_emitted", 3)
        for value in (0.001, 0.002, 0.040):
            registry.observe("search_seconds", value)
        with registry.span("index-open"):
            pass
        return registry.snapshot()

    def test_counters_become_total_samples(self):
        text = to_openmetrics(self._snapshot())
        assert "# TYPE repro_postings_consumed counter" in text
        assert "repro_postings_consumed_total 42" in text
        assert text.endswith("# EOF\n")

    def test_gauges_become_gauge_families(self):
        registry = MetricsRegistry()
        registry.gauge_set("plan_cache_entries", 12)
        registry.gauge_set("plan_cache_entries", 8)
        text = to_openmetrics(registry.snapshot())
        assert "# TYPE repro_plan_cache_entries gauge" in text
        assert "repro_plan_cache_entries 8" in text
        assert 'repro_plan_cache_entries{stat="min"} 8' in text
        assert 'repro_plan_cache_entries{stat="max"} 12' in text

    def test_gauges_round_trip_through_parser(self):
        registry = MetricsRegistry()
        registry.gauge_set("inflight", 2)
        registry.gauge_dec("inflight")
        families = parse_openmetrics(to_openmetrics(registry.snapshot()))
        gauge = families["repro_inflight"]
        assert gauge["type"] == "gauge"
        samples = {(suffix, labels.get("stat")): value
                   for suffix, labels, value in gauge["samples"]}
        assert samples == {("", None): 1.0, ("", "min"): 1.0,
                           ("", "max"): 2.0}

    def test_histograms_become_summaries_with_quantiles(self):
        text = to_openmetrics(self._snapshot())
        assert "# TYPE repro_search_seconds summary" in text
        assert "repro_search_seconds_count 3" in text
        assert 'repro_search_seconds{quantile="0.5"}' in text
        assert 'repro_search_seconds{quantile="0.99"}' in text

    def test_phase_names_are_sanitized(self):
        text = to_openmetrics(self._snapshot())
        # index-open is not a legal OpenMetrics name; the hyphen lives
        # on in the label value, never in the family name.
        assert 'repro_phase_seconds_total{phase="index-open"}' in text
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                assert OPENMETRICS_NAME.fullmatch(line.split(" ")[2])

    def test_round_trip_through_parser(self):
        snapshot = self._snapshot()
        families = parse_openmetrics(to_openmetrics(snapshot))
        counters = families["repro_postings_consumed"]
        assert counters["type"] == "counter"
        assert counters["samples"] == [("_total", {}, 42.0)]
        summary = families["repro_search_seconds"]
        quantiles = {labels["quantile"]: value
                     for suffix, labels, value in summary["samples"]
                     if suffix == ""}
        assert quantiles["0.5"] == pytest.approx(0.002)
        assert quantiles["0.99"] == pytest.approx(0.040)
        phases = families["repro_phase_seconds"]
        assert phases["samples"][0][1] == {"phase": "index-open"}

    def test_custom_namespace_is_sanitized(self):
        text = to_openmetrics({"counters": {"x": 1}}, namespace="my-app")
        assert "my_app_x_total 1" in text

    def test_parser_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")

    def test_parser_rejects_malformed_sample(self):
        text = "# TYPE repro_x counter\nrepro_x_total one two\n# EOF"
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics(text)

    def test_parser_rejects_orphan_sample(self):
        with pytest.raises(ValueError, match="outside"):
            parse_openmetrics("other_y_total 1\n# EOF")

    def test_empty_snapshot_is_valid_exposition(self):
        assert parse_openmetrics(to_openmetrics({})) == {}


class TestJsonlSink:
    def test_events_round_trip_with_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit("query", query="(a b)", duration_seconds=0.01)
            sink.emit("batch", {"queries": 3})
        events = read_jsonl(path)
        assert [event["event"] for event in events] == ["query", "batch"]
        for event in events:
            assert event["schema"] == EVENT_SCHEMA_VERSION
            assert isinstance(event["pid"], int)
        # every line is independently parseable JSON
        for line in path.read_text().splitlines():
            assert json.loads(line)["schema"] == EVENT_SCHEMA_VERSION

    def test_emit_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("results_emitted", 7)
        with JsonlSink(tmp_path / "e.jsonl") as sink:
            sink.emit_snapshot(registry.snapshot(), test="t1")
        (event,) = read_jsonl(tmp_path / "e.jsonl")
        assert event["event"] == "snapshot"
        assert event["counters"]["results_emitted"] == 7
        assert event["test"] == "t1"

    def test_per_process_path_contains_pid(self, tmp_path):
        import os
        sink = JsonlSink(tmp_path / "events.jsonl", per_process=True)
        assert str(os.getpid()) in sink.path.name
        assert sink.path.suffix == ".jsonl"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.emit("query")
        sink.close()
        sink.close()

    def test_merge_directory(self, tmp_path):
        for worker in ("a", "b"):
            with JsonlSink(tmp_path / f"events.{worker}.jsonl") as sink:
                sink.emit("query", worker=worker)
        merged = tmp_path / "merged.jsonl"
        assert merge_jsonl(tmp_path, merged) == 2
        workers = [event["worker"] for event in read_jsonl(merged)]
        assert workers == ["a", "b"]

    def test_merge_skips_its_own_output(self, tmp_path):
        with JsonlSink(tmp_path / "events.jsonl") as sink:
            sink.emit("query")
        merged = tmp_path / "merged.jsonl"
        assert merge_jsonl(tmp_path, merged) == 1
        # re-merging must not double-count the previous merge result
        assert merge_jsonl(tmp_path, merged) == 1

    def test_merge_explicit_file_list(self, tmp_path):
        paths = []
        for n in range(3):
            path = tmp_path / f"w{n}.jsonl"
            with JsonlSink(path) as sink:
                sink.emit("query", n=n)
            paths.append(path)
        merged = tmp_path / "out.jsonl"
        assert merge_jsonl(paths, merged) == 3
        assert [event["n"] for event in read_jsonl(merged)] == [0, 1, 2]

    def test_atexit_flushes_unclosed_sink(self, tmp_path):
        """A process that emits but never closes still lands its tail
        events on disk: the atexit hook flushes at interpreter exit."""
        path = tmp_path / "events.jsonl"
        script = (
            "import sys; sys.path.insert(0, sys.argv[2])\n"
            "from repro.obs import JsonlSink\n"
            "sink = JsonlSink(sys.argv[1])\n"
            "sink.emit('query', query='(a b)')\n"
            "# no close(), no context manager: atexit must save us\n"
        )
        import repro
        src = str(next(iter(repro.__path__)) + "/..")
        subprocess.run([sys.executable, "-c", script, str(path), src],
                       check=True, timeout=60)
        (event,) = read_jsonl(path)
        assert event["event"] == "query"
        assert event["query"] == "(a b)"

    def test_close_unregisters_atexit_hook(self, tmp_path):
        """close() detaches the atexit hook so a closed sink is never
        re-touched (and the hook list does not grow unbounded)."""
        import atexit
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.emit("query")
        sink.close()
        # Re-registering then unregistering the same bound method must
        # leave zero registrations — i.e. close() already removed its
        # own hook, and a second close() stays a no-op.
        atexit.unregister(sink.close)
        sink.close()
        assert read_jsonl(tmp_path / "e.jsonl")[0]["event"] == "query"


class TestJsonlRotation:
    def test_bad_rotation_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "e.jsonl", backups=-1)

    def test_rotates_when_the_cap_would_be_crossed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, max_bytes=200, backups=2) as sink:
            for n in range(12):
                sink.emit("query", n=n)
            assert sink.rotated > 0
        # the live file plus each backup honors the byte cap
        for live in [path] + list(tmp_path.glob("events.jsonl.*")):
            assert live.stat().st_size <= 200
        # nothing emitted after the last rotation was lost
        tail = [event["n"] for event in read_jsonl(path)]
        assert tail == list(range(12 - len(tail), 12))

    def test_backup_chain_shifts_and_drops_the_oldest(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlSink(path, max_bytes=1, backups=2) as sink:
            for n in range(5):  # every emit after the first rotates
                sink.emit("query", n=n)
            assert sink.rotated == 4
        assert json.loads(path.read_text())["n"] == 4
        assert json.loads((tmp_path / "e.jsonl.1").read_text())["n"] == 3
        assert json.loads((tmp_path / "e.jsonl.2").read_text())["n"] == 2
        assert not (tmp_path / "e.jsonl.3").exists()  # oldest dropped

    def test_zero_backups_truncates_instead_of_keeping_history(
            self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlSink(path, max_bytes=1, backups=0) as sink:
            for n in range(4):
                sink.emit("query", n=n)
        assert json.loads(path.read_text())["n"] == 3
        assert list(tmp_path.glob("e.jsonl.*")) == []

    def test_reopened_sink_resumes_the_size_accounting(self, tmp_path):
        """A restart against an existing file must count the bytes
        already on disk, not start the cap from zero."""
        path = tmp_path / "e.jsonl"
        with JsonlSink(path) as sink:
            sink.emit("query", n=0)
        existing = path.stat().st_size
        with JsonlSink(path, max_bytes=existing + 10, backups=1) as sink:
            sink.emit("query", n=1)  # would cross the cap: rotates
            assert sink.rotated == 1
        assert json.loads((tmp_path / "e.jsonl.1").read_text())["n"] == 0
        assert json.loads(path.read_text())["n"] == 1

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        """Worker threads hammering one rotating sink: every line is
        valid JSON (no torn writes) and no event is lost across the
        rotations the load forces (the chain is deep enough that
        nothing ages out, so loss would mean a race)."""
        import threading

        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=2048, backups=50)
        writers, per_writer = 8, 100
        start = threading.Barrier(writers)
        errors = []

        def write(worker):
            try:
                start.wait()
                for n in range(per_writer):
                    sink.emit("query", worker=worker, n=n)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=write, args=(worker,))
                   for worker in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        assert errors == []
        assert sink.rotated > 0  # the load actually exercised rotation
        survivors = []
        for live in [path] + sorted(tmp_path.glob("events.jsonl.*")):
            for line in live.read_text().splitlines():
                survivors.append(json.loads(line))  # whole lines only
        assert len(survivors) == writers * per_writer
        assert {(event["worker"], event["n"]) for event in survivors} \
            == {(worker, n) for worker in range(writers)
                for n in range(per_writer)}


class TestChromeTrace:
    def _spans(self):
        tracer = Tracer()
        try:
            with tracer.span("search", query="(a b)"):
                with tracer.span("parse"):
                    pass
                with tracer.span("stream-scan"):
                    pass
            return tracer.spans()
        finally:
            tracer.close()

    def test_complete_events_with_category_and_args(self):
        trace = to_chrome_trace(self._spans())
        assert trace["displayTimeUnit"] == "ms"
        events = [event for event in trace["traceEvents"]
                  if event["ph"] == "X"]
        assert len(events) == 3
        for event in events:
            assert event["cat"] == CHROME_TRACE_CATEGORY
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]
            assert "span_id" in event["args"]
        root = next(event for event in events
                    if event["name"] == "search")
        assert root["args"]["parent_id"] is None
        assert root["args"]["query"] == "(a b)"

    def test_events_sorted_by_ts_with_pid_metadata(self):
        trace = to_chrome_trace(self._spans())
        complete = [event["ts"] for event in trace["traceEvents"]
                    if event["ph"] == "X"]
        assert complete == sorted(complete)
        metadata = [event for event in trace["traceEvents"]
                    if event["ph"] == "M"]
        assert len(metadata) == 1
        assert metadata[0]["name"] == "process_name"
        assert "(parent)" in metadata[0]["args"]["name"]

    def test_accepts_wire_dicts(self):
        wire = [span.as_dict() for span in self._spans()]
        from_objects = to_chrome_trace(self._spans())
        from_dicts = to_chrome_trace(wire)
        assert {event["name"] for event in from_dicts["traceEvents"]} \
            == {event["name"] for event in from_objects["traceEvents"]}

    def test_empty_spans_give_empty_trace(self):
        assert to_chrome_trace([]) == {"traceEvents": [],
                                       "displayTimeUnit": "ms"}

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "trace.json"
        returned = write_chrome_trace(path, self._spans())
        assert returned == path
        loaded = json.loads(path.read_text(encoding="utf-8"))
        names = {event["name"] for event in loaded["traceEvents"]
                 if event["ph"] == "X"}
        assert names == {"search", "parse", "stream-scan"}
