"""The ops console: sparklines, frame rendering, the polling loop."""

from __future__ import annotations

import io

from repro.obs.console import (SPARK_CHARS, render_frame, run_top,
                               sparkline)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def tick(self, seconds=1.0):
        self.now += seconds


def _store_with_traffic():
    registry = MetricsRegistry()
    clock = FakeClock()
    store = TimeSeriesStore(1.0, clock=clock, registry=registry,
                            detector=False, probe_resources=False)
    store.scrape()
    for step in range(5):
        registry.inc("plan_cache_hits", step + 1)
        registry.inc("plan_cache_misses")
        registry.observe("search_seconds", 0.002 * (step + 1))
        registry.gauge_set("session_inflight_queries", step)
        clock.tick(1.0)
        store.scrape()
    return store


class TestSparkline:
    def test_scales_into_the_eight_block_characters(self):
        spark = sparkline([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        assert spark == SPARK_CHARS

    def test_flat_nonzero_renders_mid_flat_zero_renders_floor(self):
        assert sparkline([5.0, 5.0]) == SPARK_CHARS[4] * 2
        assert sparkline([0.0, 0.0]) == SPARK_CHARS[0] * 2

    def test_empty_and_none_values_are_handled(self):
        assert sparkline([]) == ""
        assert sparkline([None, 3.0]) == SPARK_CHARS[4]

    def test_width_keeps_the_newest_values(self):
        spark = sparkline([0.0] * 50 + [7.0], width=4)
        assert len(spark) == 4
        assert spark[-1] == SPARK_CHARS[-1]


class TestRenderFrame:
    def test_frame_shows_vitals_and_cache_hit_rates(self):
        store = _store_with_traffic()
        frame = render_frame(store.as_json(), source="unit test")
        assert frame.startswith("cohesive-search top - unit test")
        assert "searches/s" in frame       # derived session qps
        assert "search p50 ms" in frame
        assert "plan cache hit%" in frame
        assert any(char in frame for char in SPARK_CHARS)

    def test_empty_document_renders_placeholder(self):
        store = TimeSeriesStore(1.0, clock=FakeClock(),
                                registry=MetricsRegistry(),
                                detector=False, probe_resources=False)
        frame = render_frame(store.as_json())
        assert "no samples yet" in frame

    def test_anomaly_footer_shows_the_newest_finding(self):
        document = {"scrapes": 1, "interval_seconds": 1.0,
                    "series": {}, "anomalies": [
                        {"series": "gauge:x", "timestamp": 1.0,
                         "value": 9.0, "baseline": 1.0, "score": 8.0}]}
        frame = render_frame(document)
        assert "newest anomaly: gauge:x" in frame


class TestRunTop:
    def test_once_prints_one_frame_from_a_local_store(self):
        store = _store_with_traffic()
        out = io.StringIO()
        assert run_top(store, once=True, out=out) == 1
        text = out.getvalue()
        assert text.startswith("cohesive-search top")
        assert "\x1b[" not in text  # --once never clears the screen

    def test_frames_bound_the_rolling_mode(self):
        store = _store_with_traffic()
        out = io.StringIO()
        assert run_top(store, interval=0.0, frames=3, out=out) == 3
        assert out.getvalue().count("\x1b[H\x1b[2J") == 2

    def test_callable_source_is_polled(self):
        calls = []

        def fetch():
            calls.append(1)
            return {"scrapes": 0, "interval_seconds": 1.0,
                    "series": {}, "anomalies": []}

        out = io.StringIO()
        run_top(fetch, once=True, out=out)
        assert calls == [1]
