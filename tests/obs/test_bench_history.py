"""Benchmark history records, summaries and the regression sentinel."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import bench
from repro.obs.metrics import MetricsRegistry


def _snapshot() -> dict:
    registry = MetricsRegistry()
    registry.inc("postings_consumed", 30)
    registry.observe("search_seconds", 0.002)
    registry.gauge_set("plan_cache_entries", 4)
    with registry.span("stream-scan"):
        pass
    return registry.snapshot()


def _write_runs(path, runs):
    """``runs`` is ``[(run_id, {test: wall_seconds})]`` in time order."""
    stamp = 1_000_000.0
    for run_id, walls in runs:
        for test, wall in walls.items():
            bench.append_record(path, bench.make_record(
                test, wall, run_id, timestamp=stamp))
            stamp += 1.0


# -- records -----------------------------------------------------------------

def test_make_record_schema():
    record = bench.make_record("test_fig5", 0.25, "run-1", _snapshot(),
                               sha="abc123", timestamp=42.0)
    assert record["schema"] == bench.BENCH_SCHEMA_VERSION
    assert record["run"] == "run-1"
    assert record["test"] == "test_fig5"
    assert record["timestamp"] == 42.0
    assert record["git_sha"] == "abc123"
    assert record["wall_seconds"] == 0.25
    assert record["counters"]["postings_consumed"] == 30
    assert record["gauges"]["plan_cache_entries"] == \
        {"value": 4, "min": 4, "max": 4}
    quantiles = record["quantiles"]["search_seconds"]
    assert quantiles["count"] == 1
    assert quantiles["sum"] == 0.002
    assert set(quantiles) == {"count", "sum", "mean", "p50", "p90",
                              "p99"}
    assert record["phases"]["stream-scan"] >= 0
    assert isinstance(record["pid"], int)
    json.dumps(record)  # JSONL-safe


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    for number in range(3):
        bench.append_record(path, bench.make_record(
            f"t{number}", 0.1, "run-1", timestamp=float(number)))
    records = bench.load_history(path)
    assert [record["test"] for record in records] == ["t0", "t1", "t2"]


def test_load_history_skips_corrupt_lines(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    bench.append_record(path, bench.make_record("good", 0.1, "run-1",
                                                timestamp=1.0))
    with open(path, "a", encoding="utf-8") as file:
        file.write("{not json\n")
        file.write('{"test": "half-record"}\n')  # missing wall_seconds
        file.write("\n")
    bench.append_record(path, bench.make_record("good2", 0.2, "run-1",
                                                timestamp=2.0))
    records = bench.load_history(path)
    assert [record["test"] for record in records] == ["good", "good2"]


def test_load_history_missing_file(tmp_path):
    assert bench.load_history(tmp_path / "absent.jsonl") == []


def test_peak_rss_is_positive():
    assert bench.peak_rss_kb() > 0


class TestMaxrssNormalization:
    """``ru_maxrss`` is KiB on Linux but *bytes* on macOS."""

    def test_linux_is_already_kib(self):
        assert bench._normalize_maxrss(51200, "linux") == 51200

    def test_darwin_bytes_become_kib(self):
        assert bench._normalize_maxrss(52_428_800, "darwin") == 51200

    def test_peak_rss_normalizes_via_sys_platform(self, monkeypatch):
        import resource
        import types

        def fake_getrusage(who):
            assert who == resource.RUSAGE_SELF
            return types.SimpleNamespace(ru_maxrss=8_388_608)

        monkeypatch.setattr(resource, "getrusage", fake_getrusage)
        monkeypatch.setattr(bench.sys, "platform", "darwin")
        assert bench.peak_rss_kb() == 8192
        monkeypatch.setattr(bench.sys, "platform", "linux")
        assert bench.peak_rss_kb() == 8_388_608


def test_git_sha_in_repo_and_outside(tmp_path):
    assert bench.git_sha() is None or len(bench.git_sha()) == 40
    assert bench.git_sha(tmp_path) is None


# -- summary -----------------------------------------------------------------

def test_summarize_latest_vs_trailing_median(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [
        ("run-1", {"a": 0.10, "b": 0.50}),
        ("run-2", {"a": 0.20, "b": 0.50}),
        ("run-3", {"a": 0.30, "b": 0.50, "c": 0.01}),
    ])
    summary = bench.summarize(bench.load_history(path))
    assert summary["runs"] == 3
    assert summary["latest_run"] == "run-3"
    tests = summary["tests"]
    assert tests["a"]["wall_seconds"] == 0.30
    assert tests["a"]["trailing_median_seconds"] == \
        pytest.approx(0.15)
    assert tests["a"]["prior_runs"] == 2
    assert tests["c"]["trailing_median_seconds"] is None
    assert tests["c"]["prior_runs"] == 0


def test_write_summary_creates_artifact(tmp_path):
    history = tmp_path / "BENCH_history.jsonl"
    _write_runs(history, [("run-1", {"a": 0.10})])
    summary_path = tmp_path / "BENCH_summary.json"
    returned = bench.write_summary(history, summary_path)
    on_disk = json.loads(summary_path.read_text(encoding="utf-8"))
    assert on_disk == json.loads(json.dumps(returned))
    assert on_disk["tests"]["a"]["wall_seconds"] == 0.10


def test_empty_summary_shape():
    assert bench.summarize([]) == {
        "schema": bench.BENCH_SCHEMA_VERSION, "runs": 0, "tests": {}}


# -- the regression sentinel -------------------------------------------------

def test_unchanged_timings_do_not_regress(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.10})])
    rows = bench.check_regressions(bench.load_history(path))
    assert [row["regressed"] for row in rows] == [False]


def test_double_wall_time_regresses(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.20})])
    (row,) = bench.check_regressions(bench.load_history(path))
    assert row["regressed"]
    assert row["ratio"] == 2.0
    report = bench.format_check([row])
    assert "REGRESSION" in report


def test_within_threshold_passes(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.12})])
    (row,) = bench.check_regressions(bench.load_history(path))
    assert not row["regressed"]


def test_micro_timings_never_regress(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.001}), ("run-2", {"a": 0.004})])
    (row,) = bench.check_regressions(bench.load_history(path))
    assert not row["regressed"], "medians under min_seconds are jitter"


def test_new_test_never_regresses(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}),
                       ("run-2", {"a": 0.10, "b": 9.0})])
    rows = {row["test"]: row
            for row in bench.check_regressions(bench.load_history(path))}
    assert rows["b"]["median"] is None
    assert not rows["b"]["regressed"]


def test_median_uses_trailing_window(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    runs = [(f"run-{number}", {"a": 10.0}) for number in range(5)]
    runs += [(f"run-{number}", {"a": 0.10})
             for number in range(5, 5 + bench.TRAILING_RUNS)]
    runs.append(("run-latest", {"a": 0.11}))
    _write_runs(path, runs)
    (row,) = bench.check_regressions(bench.load_history(path))
    assert row["median"] == 0.10, \
        "ancient slow runs must age out of the trailing window"
    assert not row["regressed"]


# -- the CLI gate ------------------------------------------------------------

def test_cli_bench_check_ok(tmp_path, capsys):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.10})])
    assert main(["bench-check", "--history", str(path)]) == 0
    out = capsys.readouterr().out
    assert "bench-check: ok" in out


def test_cli_bench_check_fails_on_regression(tmp_path, capsys):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.20})])
    assert main(["bench-check", "--history", str(path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_check_threshold_override(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10}), ("run-2", {"a": 0.20})])
    assert main(["bench-check", "--history", str(path),
                 "--threshold", "1.5"]) == 0


def test_cli_bench_check_writes_summary(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    _write_runs(path, [("run-1", {"a": 0.10})])
    summary = tmp_path / "BENCH_summary.json"
    assert main(["bench-check", "--history", str(path),
                 "--summary", str(summary)]) == 0
    assert json.loads(summary.read_text(encoding="utf-8"))["runs"] == 1


def test_cli_bench_check_no_history(tmp_path, capsys):
    assert main(["bench-check", "--history",
                 str(tmp_path / "none.jsonl")]) == 0
    assert "no benchmark history" in capsys.readouterr().out
