"""The resource watchdog: snapshots, rings and soft budgets."""

import sys
import time
import tracemalloc

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.watchdog import (BUDGET_KEYS, WATCHDOG_GAUGES,
                                ResourceWatchdog, current_rss_bytes,
                                open_fd_count)


class _RecordingSink:
    def __init__(self):
        self.events = []

    def emit(self, kind, payload):
        self.events.append((kind, payload))


class TestProbes:
    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="/proc probes are Linux-only")
    def test_current_rss_bytes_is_plausible(self):
        rss = current_rss_bytes()
        assert isinstance(rss, int)
        assert rss > 1024 * 1024  # a CPython process is > 1 MiB

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="/proc probes are Linux-only")
    def test_open_fd_count_is_positive(self):
        fds = open_fd_count()
        assert isinstance(fds, int)
        assert fds > 0


class TestConstruction:
    def test_rejects_bad_interval_and_capacity(self):
        with pytest.raises(ValueError):
            ResourceWatchdog(interval=0)
        with pytest.raises(ValueError):
            ResourceWatchdog(interval=-1)
        with pytest.raises(ValueError):
            ResourceWatchdog(capacity=0)

    def test_rejects_unknown_budget_keys(self):
        with pytest.raises(ValueError, match="max_rss_gb"):
            ResourceWatchdog(budgets={"max_rss_gb": 1})
        # every built-in key and the gauge:<name> form are accepted
        ResourceWatchdog(budgets=dict.fromkeys(BUDGET_KEYS, 1))
        ResourceWatchdog(budgets={"gauge:plan_cache_entries": 1})


class TestSnapshots:
    def test_snap_shape(self):
        watchdog = ResourceWatchdog(registry=MetricsRegistry())
        snapshot = watchdog.snap()
        assert set(snapshot) == {"timestamp", "rss_bytes", "open_fds",
                                 "threads", "tracemalloc_peak_bytes",
                                 "gauges"}
        assert snapshot["threads"] >= 1
        assert watchdog.sampled == 1
        assert len(watchdog) == 1

    def test_snap_republishes_process_gauges(self):
        registry = MetricsRegistry()
        snapshot = ResourceWatchdog(registry=registry).snap()
        for field, gauge in (("rss_bytes", "process_rss_bytes"),
                             ("open_fds", "process_open_fds"),
                             ("threads", "process_threads")):
            if snapshot[field] is not None:
                assert registry.gauge(gauge) == snapshot[field]
                assert gauge in WATCHDOG_GAUGES

    def test_snap_captures_registry_gauges(self):
        registry = MetricsRegistry()
        registry.gauge_set("plan_cache_entries", 7)
        snapshot = ResourceWatchdog(registry=registry).snap()
        assert snapshot["gauges"]["plan_cache_entries"] == 7

    def test_tracemalloc_peak_none_unless_tracing(self):
        registry = MetricsRegistry()
        watchdog = ResourceWatchdog(registry=registry)
        assert watchdog.snap()["tracemalloc_peak_bytes"] is None
        tracemalloc.start()
        try:
            peak = watchdog.snap()["tracemalloc_peak_bytes"]
        finally:
            tracemalloc.stop()
        assert isinstance(peak, int)
        assert registry.gauge("tracemalloc_peak_bytes") == peak

    def test_ring_keeps_newest_but_counts_lifetime(self):
        watchdog = ResourceWatchdog(capacity=3,
                                    registry=MetricsRegistry())
        for _ in range(5):
            watchdog.snap()
        assert len(watchdog) == 3
        assert watchdog.sampled == 5
        snapshots = watchdog.snapshots()
        assert snapshots == sorted(snapshots,
                                   key=lambda s: s["timestamp"])
        assert list(watchdog) == snapshots

    def test_null_metrics_snapshot_has_no_gauges(self):
        # default registry resolution reaches NULL_METRICS here
        snapshot = ResourceWatchdog().snap()
        assert snapshot["gauges"] == {}


class TestBudgets:
    def test_rss_budget_breach_is_recorded_counted_and_emitted(self):
        registry = MetricsRegistry()
        sink = _RecordingSink()
        watchdog = ResourceWatchdog(budgets={"max_rss_mb": 0.001},
                                    registry=registry, sink=sink)
        snapshot = watchdog.snap()
        if snapshot["rss_bytes"] is None:
            pytest.skip("no RSS probe on this platform")
        assert watchdog.breached == 1
        breach = watchdog.breaches()[0]
        assert breach["budget"] == "max_rss_mb"
        assert breach["limit"] == 0.001
        assert breach["value"] > 0.001
        assert registry.counters["watchdog_breaches"] == 1
        assert sink.events == [("resource_breach", breach)]

    def test_within_budget_records_nothing(self):
        registry = MetricsRegistry()
        watchdog = ResourceWatchdog(budgets={"max_rss_mb": 1 << 20,
                                             "max_threads": 10_000},
                                    registry=registry)
        watchdog.snap()
        assert watchdog.breached == 0
        assert "watchdog_breaches" not in registry.counters

    def test_gauge_budget_targets_a_named_gauge(self):
        registry = MetricsRegistry()
        registry.gauge_set("plan_cache_entries", 9)
        watchdog = ResourceWatchdog(
            budgets={"gauge:plan_cache_entries": 5}, registry=registry)
        watchdog.snap()
        assert watchdog.breached == 1
        assert watchdog.breaches()[0]["value"] == 9

    def test_max_cache_bytes_sums_cache_byte_gauges(self):
        registry = MetricsRegistry()
        registry.gauge_set("plan_cache_bytes", 600)
        registry.gauge_set("posting_cache_bytes", 500)
        registry.gauge_set("plan_cache_entries", 999_999)  # not summed
        watchdog = ResourceWatchdog(budgets={"max_cache_bytes": 1000},
                                    registry=registry)
        watchdog.snap()
        assert watchdog.breached == 1
        assert watchdog.breaches()[0]["value"] == 1100

    def test_missing_gauge_budget_never_breaches(self):
        watchdog = ResourceWatchdog(budgets={"gauge:absent": 1},
                                    registry=MetricsRegistry())
        watchdog.snap()
        assert watchdog.breached == 0


class TestLifecycle:
    def test_background_sampling_accumulates(self):
        watchdog = ResourceWatchdog(interval=0.01,
                                    registry=MetricsRegistry())
        with watchdog:
            assert watchdog.running
            deadline = time.monotonic() + 2.0
            while watchdog.sampled < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not watchdog.running
        assert watchdog.sampled >= 3  # immediate snap + periodic ones

    def test_start_and_stop_are_idempotent(self):
        watchdog = ResourceWatchdog(interval=0.01,
                                    registry=MetricsRegistry())
        assert watchdog.start() is watchdog
        assert watchdog.start() is watchdog
        watchdog.stop()
        watchdog.stop()
        assert not watchdog.running

    def test_as_json_document(self):
        watchdog = ResourceWatchdog(interval=0.5, capacity=8,
                                    budgets={"max_threads": 10_000},
                                    registry=MetricsRegistry())
        watchdog.snap()
        document = watchdog.as_json()
        assert document["interval_seconds"] == 0.5
        assert document["budgets"] == {"max_threads": 10_000}
        assert document["sampled"] == 1
        assert document["breached"] == 0
        assert len(document["snapshots"]) == 1
        assert document["breaches"] == []
