"""docs/OBSERVABILITY.md's catalogues must match the code.

Counters, two directions: every counter the source increments
(literal ``inc("...")`` calls plus the declared catalogues) must
appear in the docs' tables, and every counter the tables list must
exist in the source — so the catalogue can be trusted when wiring
dashboards against ``/metrics``.

Trace span attributes, same two directions: the "Span attribute
catalogue" table (rows prefixed ``| attr:``) against
:data:`repro.obs.tracing.TRACE_ATTRIBUTES`.

Gauges, same two directions: the gauge catalogue (rows prefixed
``| gauge:``) against the declared gauge tuples plus literal
``gauge_set/inc/dec("...")`` calls.  The runtime-cache gauge names are
built from f-strings (``f"{name}_entries"``), which the literal regex
cannot see — that is what :data:`RUNTIME_GAUGES` is for; likewise the
per-objective ``slo_state:<name>`` family, which the docs describe in
prose and :data:`~repro.obs.slo.SLO_GAUGES` covers for the fixed names.

Wide-event fields and flight-bundle fields, same two directions: the
``| event-field:`` rows against :data:`~repro.obs.wideevent.
WIDE_EVENT_FIELDS` and the ``| bundle-field:`` rows against
:data:`~repro.obs.flight.FLIGHT_BUNDLE_FIELDS`.

Time-series document and anomaly-record fields, same two directions:
the ``| series-field:`` rows against :data:`~repro.obs.timeseries.
SERIES_FIELDS` and the ``| anomaly-field:`` rows against
:data:`~repro.obs.timeseries.ANOMALY_EVENT_FIELDS`.
"""

import re
from pathlib import Path

from repro.core.engine import ENGINE_COUNTERS
from repro.index.store_v2 import STORE_V2_COUNTERS, STORE_V2_GAUGES
from repro.obs.flight import FLIGHT_BUNDLE_FIELDS
from repro.obs.slo import SLO_GAUGES
from repro.obs.timeseries import ANOMALY_EVENT_FIELDS, SERIES_FIELDS
from repro.obs.tracing import TRACE_ATTRIBUTES, TRACING_GAUGES
from repro.obs.watchdog import WATCHDOG_GAUGES
from repro.obs.wideevent import WIDE_EVENT_FIELDS
from repro.runtime.session import RUNTIME_COUNTERS, RUNTIME_GAUGES
from repro.server.app import SERVER_COUNTERS, SERVER_GAUGES

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "OBSERVABILITY.md"

_INC_LITERAL = re.compile(r'\.inc\(\s*"([a-z0-9_]+)"')
_BACKTICKED = re.compile(r"`([a-z0-9_]+)`")


def _code_counters() -> set:
    names = set(ENGINE_COUNTERS) | set(RUNTIME_COUNTERS) \
        | set(STORE_V2_COUNTERS) | set(SERVER_COUNTERS)
    for path in SRC.rglob("*.py"):
        names.update(_INC_LITERAL.findall(path.read_text(encoding="utf-8")))
    return names


def _documented_counters() -> set:
    """Backticked names in the first column of the catalogue tables."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(_BACKTICKED.findall(first_cell))
    return names


def test_every_incremented_counter_is_documented():
    missing = _code_counters() - _documented_counters()
    assert not missing, \
        f"counters incremented in src/repro/ but absent from " \
        f"docs/OBSERVABILITY.md: {sorted(missing)}"


def test_every_documented_counter_exists_in_code():
    stale = _documented_counters() - _code_counters()
    assert not stale, \
        f"counters documented in docs/OBSERVABILITY.md but never " \
        f"incremented in src/repro/: {sorted(stale)}"


def _documented_trace_attributes() -> set:
    """Backticked names in the ``| attr:``-prefixed catalogue rows."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith("| attr:"):
            continue
        first_cell = line.split("|")[1]
        names.update(_BACKTICKED.findall(first_cell))
    return names


def test_every_trace_attribute_is_documented():
    missing = set(TRACE_ATTRIBUTES) - _documented_trace_attributes()
    assert not missing, \
        f"span attributes in TRACE_ATTRIBUTES but absent from " \
        f"docs/OBSERVABILITY.md's attribute catalogue: {sorted(missing)}"


def test_every_documented_trace_attribute_exists_in_code():
    stale = _documented_trace_attributes() - set(TRACE_ATTRIBUTES)
    assert not stale, \
        f"span attributes documented in docs/OBSERVABILITY.md but " \
        f"missing from TRACE_ATTRIBUTES: {sorted(stale)}"


_GAUGE_LITERAL = re.compile(
    r'\.gauge_(?:set|inc|dec)\(\s*"([a-z0-9_]+)"')


def _code_gauges() -> set:
    names = set(RUNTIME_GAUGES) | set(STORE_V2_GAUGES) \
        | set(TRACING_GAUGES) | set(WATCHDOG_GAUGES) \
        | set(SERVER_GAUGES) | set(SLO_GAUGES)
    for path in SRC.rglob("*.py"):
        names.update(
            _GAUGE_LITERAL.findall(path.read_text(encoding="utf-8")))
    return names


def _documented_gauges() -> set:
    """Backticked names in the ``| gauge:``-prefixed catalogue rows."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith("| gauge:"):
            continue
        first_cell = line.split("|")[1]
        names.update(_BACKTICKED.findall(first_cell))
    return names


def test_every_published_gauge_is_documented():
    missing = _code_gauges() - _documented_gauges()
    assert not missing, \
        f"gauges published in src/repro/ but absent from " \
        f"docs/OBSERVABILITY.md's gauge catalogue: {sorted(missing)}"


def test_every_documented_gauge_exists_in_code():
    stale = _documented_gauges() - _code_gauges()
    assert not stale, \
        f"gauges documented in docs/OBSERVABILITY.md but never " \
        f"published in src/repro/: {sorted(stale)}"


def _documented_prefixed(prefix: str) -> set:
    """Backticked names in rows carrying the given ``| <prefix>:``."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith(f"| {prefix}:"):
            continue
        first_cell = line.split("|")[1]
        names.update(_BACKTICKED.findall(first_cell))
    return names


def test_every_wide_event_field_is_documented():
    missing = set(WIDE_EVENT_FIELDS) - _documented_prefixed("event-field")
    assert not missing, \
        f"wide-event fields in WIDE_EVENT_FIELDS but absent from " \
        f"docs/OBSERVABILITY.md's event-field catalogue: " \
        f"{sorted(missing)}"


def test_every_documented_wide_event_field_exists_in_code():
    stale = _documented_prefixed("event-field") - set(WIDE_EVENT_FIELDS)
    assert not stale, \
        f"wide-event fields documented in docs/OBSERVABILITY.md but " \
        f"missing from WIDE_EVENT_FIELDS: {sorted(stale)}"


def test_every_bundle_field_is_documented():
    missing = set(FLIGHT_BUNDLE_FIELDS) \
        - _documented_prefixed("bundle-field")
    assert not missing, \
        f"bundle fields in FLIGHT_BUNDLE_FIELDS but absent from " \
        f"docs/OBSERVABILITY.md's bundle-field catalogue: " \
        f"{sorted(missing)}"


def test_every_documented_bundle_field_exists_in_code():
    stale = _documented_prefixed("bundle-field") \
        - set(FLIGHT_BUNDLE_FIELDS)
    assert not stale, \
        f"bundle fields documented in docs/OBSERVABILITY.md but " \
        f"missing from FLIGHT_BUNDLE_FIELDS: {sorted(stale)}"


def test_every_series_field_is_documented():
    missing = set(SERIES_FIELDS) - _documented_prefixed("series-field")
    assert not missing, \
        f"/seriesz fields in SERIES_FIELDS but absent from " \
        f"docs/OBSERVABILITY.md's series-field catalogue: " \
        f"{sorted(missing)}"


def test_every_documented_series_field_exists_in_code():
    stale = _documented_prefixed("series-field") - set(SERIES_FIELDS)
    assert not stale, \
        f"/seriesz fields documented in docs/OBSERVABILITY.md but " \
        f"missing from SERIES_FIELDS: {sorted(stale)}"


def test_every_anomaly_field_is_documented():
    missing = set(ANOMALY_EVENT_FIELDS) \
        - _documented_prefixed("anomaly-field")
    assert not missing, \
        f"anomaly-record fields in ANOMALY_EVENT_FIELDS but absent " \
        f"from docs/OBSERVABILITY.md's anomaly-field catalogue: " \
        f"{sorted(missing)}"


def test_every_documented_anomaly_field_exists_in_code():
    stale = _documented_prefixed("anomaly-field") \
        - set(ANOMALY_EVENT_FIELDS)
    assert not stale, \
        f"anomaly-record fields documented in docs/OBSERVABILITY.md " \
        f"but missing from ANOMALY_EVENT_FIELDS: {sorted(stale)}"
