"""The sampling CPU profiler: folded aggregation and exporters."""

import json
import threading
import time

import pytest

from repro.obs.export import to_speedscope, write_speedscope
from repro.obs.sampler import DEFAULT_HZ, StackSampler, _frame_label


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(100))


def _sample_busy_thread(sampler_kwargs=None, seconds=0.3):
    """Run a busy worker under a sampler; returns (sampler, worker tid)."""
    stop = threading.Event()
    worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
    worker.start()
    kwargs = {"hz": 500, "thread_ids": (worker.ident,)}
    kwargs.update(sampler_kwargs or {})
    try:
        with StackSampler(**kwargs) as sampler:
            time.sleep(seconds)
    finally:
        stop.set()
        worker.join(timeout=5.0)
    return sampler, worker.ident


class TestStackSampler:
    def test_rejects_non_positive_hz(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)
        with pytest.raises(ValueError):
            StackSampler(hz=-1)

    def test_default_hz_is_prime(self):
        assert DEFAULT_HZ == 97
        assert all(DEFAULT_HZ % d for d in range(2, DEFAULT_HZ))

    def test_empty_before_first_sample(self):
        sampler = StackSampler()
        assert sampler.folded() == {}
        assert sampler.to_collapsed() == ""
        assert sampler.sample_count == 0
        assert not sampler.running

    def test_samples_a_busy_thread(self):
        sampler, _ = _sample_busy_thread()
        assert sampler.sample_count > 0
        folded = sampler.folded()
        assert sum(folded.values()) == sampler.sample_count
        # the spin loop dominates the profile
        assert any("_spin" in key for key in folded)

    def test_collapsed_lines_are_sorted_stack_count_pairs(self):
        sampler, _ = _sample_busy_thread()
        lines = sampler.to_collapsed().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or "." in stack
            assert int(count) > 0

    def test_thread_filter_excludes_other_threads(self):
        # restricted to a tid that never runs Python code -> no samples
        sampler, _ = _sample_busy_thread(
            sampler_kwargs={"thread_ids": (987654321,)})
        assert sampler.sample_count == 0

    def test_sampler_never_samples_itself(self):
        sampler, _ = _sample_busy_thread()
        assert all("StackSampler._run" not in key
                   for key in sampler.folded())

    def test_reset_drops_samples(self):
        sampler, _ = _sample_busy_thread()
        assert sampler.sample_count > 0
        sampler.reset()
        assert sampler.folded() == {}
        assert sampler.sample_count == 0

    def test_counts_accumulate_across_start_stop_cycles(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,),
                                  daemon=True)
        worker.start()
        sampler = StackSampler(hz=500, thread_ids=(worker.ident,))
        try:
            with sampler:
                time.sleep(0.15)
            first = sampler.sample_count
            with sampler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join(timeout=5.0)
        assert first > 0
        assert sampler.sample_count > first

    def test_stop_is_idempotent(self):
        sampler = StackSampler().start()
        assert sampler.running
        sampler.stop()
        sampler.stop()
        assert not sampler.running

    def test_write_collapsed(self, tmp_path):
        sampler, _ = _sample_busy_thread()
        path = sampler.write_collapsed(tmp_path / "deep" / "p.folded")
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert text.rstrip("\n") == sampler.to_collapsed()

    def test_write_collapsed_empty_profile(self, tmp_path):
        path = StackSampler().write_collapsed(tmp_path / "p.folded")
        assert path.read_text(encoding="utf-8") == ""

    def test_frame_label_uses_module_and_qualname(self):
        import sys
        frame = sys._getframe()
        label = _frame_label(frame)
        assert label.startswith("tests.obs.test_sampler.")
        assert label.endswith("test_frame_label_uses_module_and_qualname")


class TestSpeedscopeExport:
    def test_document_shape_and_weights(self):
        folded = {"a;b;c": 3, "a;b": 2, "d": 1}
        doc = to_speedscope(folded, name="unit")
        assert doc["$schema"] == \
            "https://www.speedscope.app/file-format-schema.json"
        assert doc["name"] == "unit"
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert sum(profile["weights"]) == 6
        assert len(profile["samples"]) == len(profile["weights"]) == 3
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert set(frames) == {"a", "b", "c", "d"}
        # samples reference frames by index, root first
        first = profile["samples"][0]
        assert [frames[i] for i in first] == ["a", "b"]

    def test_empty_profile_is_valid(self):
        doc = to_speedscope({})
        profile = doc["profiles"][0]
        assert profile["samples"] == []
        assert profile["weights"] == []
        assert profile["endValue"] == 0

    def test_write_speedscope_round_trips_json(self, tmp_path):
        sampler, _ = _sample_busy_thread()
        path = write_speedscope(tmp_path / "p.speedscope.json",
                                sampler.folded())
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert sum(doc["profiles"][0]["weights"]) == \
            sampler.sample_count


class TestSessionProfiling:
    def test_profile_cpu_captures_the_search(self):
        from repro.index.inverted import InvertedIndex
        from repro.runtime import SearchSession
        from repro.xmlio.loader import load_tree
        tree = load_tree(
            "<root>" + "<a><b>alpha</b><c>beta</c></a>" * 50 +
            "</root>")
        session = SearchSession(InvertedIndex.from_tree(tree))
        with session.profile_cpu(hz=500) as sampler:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                session.search("(alpha beta)")
        assert sampler.sample_count > 0
        assert any("repro" in key for key in sampler.folded())
        # the sampler stays referenced so /flamez can serve it
        assert session._profiler is sampler
        assert not sampler.running
