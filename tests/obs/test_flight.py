"""The flight recorder: bundles, triggers, throttling, persistence."""

import json

import pytest

from repro.obs import (FLIGHT_BUNDLE_FIELDS, FLIGHT_REASONS,
                       FLIGHT_SCHEMA_VERSION, FlightRecorder,
                       MetricsRegistry, SLOEngine, wide_event)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def _recorder(clock, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("traces_provider", list)
    return FlightRecorder(capacity=8, gauge_capacity=4, clock=clock,
                          **kwargs)


class TestBundle:
    def test_bundle_matches_the_published_catalogue(self):
        bundle = _recorder(FakeClock()).bundle()
        assert tuple(bundle) == FLIGHT_BUNDLE_FIELDS
        assert bundle["schema"] == FLIGHT_SCHEMA_VERSION
        assert bundle["reason"] == "on_demand"
        assert bundle["reason"] in FLIGHT_REASONS
        assert bundle["slo"] is None
        assert bundle["dumped"] == 0

    def test_bundle_is_pure_and_deterministic(self):
        """Two bundles under a frozen clock are identical and move no
        state — the byte-for-byte contract behind ``/debugz``."""
        clock = FakeClock()
        recorder = _recorder(clock)
        recorder.record(wide_event("query", "search", timestamp=1.0))
        first = json.dumps(recorder.bundle(), sort_keys=True)
        second = json.dumps(recorder.bundle(), sort_keys=True)
        assert first == second
        assert recorder.dumped == 0
        assert recorder._metrics().counter("flight_dumps") == 0

    def test_bundle_carries_events_gauges_counters_and_slo(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.inc("results_emitted", 3)
        registry.gauge_set("inflight", 2)
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           registry=registry)
        recorder = _recorder(clock, registry=registry, slo=engine)
        event = wide_event("query", "search", timestamp=5.0)
        recorder.record(event)
        engine.record(event)
        recorder.snap_gauges()
        bundle = recorder.bundle()
        assert bundle["events"] == [event]
        assert bundle["event_stats"]["recorded"] == 1
        assert bundle["counters"]["results_emitted"] == 3
        (snapshot,) = bundle["gauge_snapshots"]
        assert snapshot["timestamp"] == clock.now
        assert snapshot["gauges"]["inflight"] == 2
        assert bundle["slo"]["schema"] == 1
        assert bundle["slo"]["recorded"] == 1

    def test_broken_traces_provider_does_not_break_the_bundle(self):
        def explode():
            raise RuntimeError("tracing is down")

        recorder = _recorder(FakeClock(), traces_provider=explode)
        assert recorder.bundle()["traces"] == []

    def test_gauge_snapshot_ring_is_bounded(self):
        clock = FakeClock()
        recorder = _recorder(clock)  # gauge_capacity=4
        for n in range(10):
            recorder.snap_gauges({"n": n}, timestamp=float(n))
        snapshots = recorder.gauge_snapshots()
        assert [entry["gauges"]["n"] for entry in snapshots] \
            == [6, 7, 8, 9]
        assert recorder.stats()["gauge_snapshots"] == 10


class TestTrigger:
    def test_trigger_counts_and_names_the_reason(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = _recorder(clock, registry=registry)
        bundle = recorder.trigger("slo_page")
        assert bundle["reason"] == "slo_page"
        assert recorder.dumped == 1
        assert recorder.last_reason == "slo_page"
        assert registry.counters["flight_dumps"] == 1

    def test_automatic_triggers_are_rate_limited(self):
        clock = FakeClock()
        recorder = _recorder(clock, auto_interval=30.0)
        assert recorder.trigger("slo_page") is not None
        assert recorder.trigger("watchdog_breach") is None  # throttled
        clock.now += 31.0
        assert recorder.trigger("watchdog_breach") is not None
        assert recorder.dumped == 2

    def test_on_demand_is_never_throttled(self):
        clock = FakeClock()
        recorder = _recorder(clock, auto_interval=30.0)
        recorder.trigger("slo_page")
        assert recorder.trigger() is not None
        assert recorder.trigger() is not None
        assert recorder.dumped == 3

    def test_dump_dir_persists_counter_named_bundles(self, tmp_path):
        clock = FakeClock()
        recorder = _recorder(clock, dump_dir=tmp_path / "dumps")
        recorder.record(wide_event("query", "search", timestamp=2.0))
        recorder.trigger("slo_page")
        clock.now += 60.0
        recorder.trigger("watchdog_breach")
        paths = sorted((tmp_path / "dumps").glob("flight-*.json"))
        assert [path.name for path in paths] \
            == ["flight-1.json", "flight-2.json"]
        first = json.loads(paths[0].read_text(encoding="utf-8"))
        assert first["reason"] == "slo_page"
        assert first["events"][0]["event"] == "query"

    def test_ring_eviction_survives_into_the_bundle(self):
        recorder = _recorder(FakeClock())  # capacity=8
        for n in range(100):
            recorder.record(wide_event("query", "search",
                                       timestamp=float(n)))
        stats = recorder.bundle()["event_stats"]
        assert stats == {"capacity": 8, "recorded": 100,
                         "retained": 8, "evicted": 92}

    def test_gauge_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(gauge_capacity=0)
