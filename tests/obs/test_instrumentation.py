"""The instrumented hot paths report the counters the paper's
experiments need — and report nothing at all when observability is off.
"""

from repro.baselines.slca import slca_indexed_lookup
from repro.core.engine import CohesiveLCA, stream_evaluate
from repro.core.lattice import bell_number, lattice_node_count
from repro.core.lattice_machine import lattice_machine_evaluate
from repro.index.store import load_index, save_index
from repro.obs import metrics_scope

from tests.conftest import Q1


class TestEngineCounters:
    def test_search_populates_core_counters(self, figure1_index):
        with metrics_scope() as metrics:
            results = CohesiveLCA(figure1_index).search(Q1)
        counters = metrics.counters
        assert counters["results_emitted"] == len(results) == 3
        assert counters["postings_consumed"] > 0
        assert counters["stack_pushes"] > 0
        assert counters["stack_pushes"] == counters["stack_pops"]
        assert counters["partial_lca_allocations"] > 0
        assert counters["entries_merged"] > 0

    def test_lattice_reduction_counters(self, figure1_index):
        with metrics_scope() as metrics:
            CohesiveLCA(figure1_index).search(Q1)
        built = metrics.counter("lattice_nodes_built")
        pruned = metrics.counter("lattice_nodes_pruned")
        assert built == lattice_node_count(Q1)
        assert built + pruned == bell_number(7)  # Q1 has 7 keywords

    def test_phase_timers_cover_the_pipeline(self, figure1_index):
        with metrics_scope() as metrics:
            CohesiveLCA(figure1_index).search(Q1)
        phases = metrics.snapshot()["phases"]
        for phase in ("parse", "lattice-build", "stream-scan", "rank"):
            assert phase in phases, phase

    def test_empty_list_short_circuit_still_declares(self, figure1_index):
        with metrics_scope() as metrics:
            results = CohesiveLCA(figure1_index).search("(xml zzznope)")
        assert results == []
        counters = metrics.counters
        assert counters["postings_consumed"] == 0
        assert counters["results_emitted"] == 0
        assert "stack_pushes" in counters

    def test_streaming_evaluation_flushes_on_exhaustion(
            self, figure1_index):
        with metrics_scope() as metrics:
            results = list(stream_evaluate(Q1, figure1_index))
        assert metrics.counter("results_emitted") == len(results)

    def test_disabled_by_default_records_nothing(self, figure1_index):
        with metrics_scope() as probe:
            pass  # only used to prove the previous run left no trace
        CohesiveLCA(figure1_index).search(Q1)
        assert probe.counters == {}


class TestLatticeMachineCounters:
    def test_machine_reports_exact_stack_count(self, figure1_index):
        query = "(XML (Paul Cooper))"
        with metrics_scope() as metrics:
            results = lattice_machine_evaluate(query, figure1_index)
        counters = metrics.counters
        assert counters["results_emitted"] == len(results)
        assert counters["postings_consumed"] > 0
        assert counters["stack_pushes"] == counters["stack_pops"]
        assert counters["lattice_nodes_built"] > 0
        assert counters["partial_lca_allocations"] > 0


class TestIndexCounters:
    def test_postings_access_is_counted(self, figure1_index):
        with metrics_scope() as metrics:
            plist = figure1_index.postings("xml")
        assert metrics.counter("index_lists_requested") == 1
        assert metrics.counter("index_postings_returned") == len(plist)
        histogram = metrics.histogram("posting_list_length")
        assert histogram.count == 1
        assert histogram.maximum == len(plist)

    def test_store_round_trip_counts_bytes(self, figure1_index,
                                           tmp_path):
        path = tmp_path / "fig1.idx"
        with metrics_scope() as metrics:
            written = save_index(figure1_index, path)
            load_index(path)
        assert metrics.counter("store_bytes_written") == written
        assert metrics.counter("store_bytes_read") == written
        assert "index-load" in metrics.snapshot()["phases"]


class TestHotPathGauges:
    def test_search_publishes_cache_occupancy_gauges(self, figure1_index):
        from repro.runtime import SearchSession
        session = SearchSession(figure1_index)
        with metrics_scope() as metrics:
            session.search(Q1)
        gauges = metrics.snapshot()["gauges"]
        assert gauges["plan_cache_entries"]["value"] >= 1
        assert gauges["plan_cache_bytes"]["value"] > 0
        assert gauges["posting_cache_entries"]["value"] >= 1
        assert gauges["posting_cache_bytes"]["value"] > 0

    def test_inflight_gauge_returns_to_zero_with_peak_one(
            self, figure1_index):
        from repro.runtime import SearchSession
        session = SearchSession(figure1_index)
        with metrics_scope() as metrics:
            session.search(Q1)
            session.search(Q1)
        inflight = metrics.snapshot()["gauges"]["session_inflight_queries"]
        assert inflight == {"value": 0, "min": 0, "max": 1}

    def test_lazy_store_publishes_residency_gauges(self, figure1_index,
                                                   tmp_path):
        from repro.index.store_v2 import open_index, save_index_v2
        path = tmp_path / "fig1.cks2"
        save_index_v2(figure1_index, path)
        lazy = open_index(path)
        with metrics_scope() as metrics:
            lazy.postings("xml")
            lazy.postings("cooper")
        gauges = metrics.snapshot()["gauges"]
        assert gauges["index_decoded_blocks"]["value"] == 2
        assert gauges["index_decoded_bytes"]["value"] > 0

    def test_tracer_ring_depth_gauge(self):
        from repro.obs import Tracer
        tracer = Tracer(capacity=2)
        try:
            with metrics_scope() as metrics:
                for _ in range(3):
                    with tracer.span("s"):
                        pass
            assert metrics.gauge("trace_ring_depth") == 2
            assert metrics.counter("trace_spans_dropped") == 1
        finally:
            tracer.close()


class TestBaselineCounters:
    def test_slca_counts_list_accesses(self, figure1_index):
        with metrics_scope() as metrics:
            slca_indexed_lookup(["xml", "cooper"], figure1_index)
        counters = metrics.counters
        assert counters["baseline_lists_loaded"] == 2
        assert counters["baseline_instances_loaded"] > 0
        assert counters["baseline_list_accesses"] > 0
