"""Wide events: the builder's catalogue discipline and the ring."""

import threading

import pytest

from repro.obs import (WIDE_EVENT_FIELDS, WIDE_EVENT_OUTCOMES,
                       EventRing, wide_event)


class TestWideEventBuilder:
    def test_every_catalogue_field_is_present(self):
        event = wide_event("query", "search")
        assert tuple(event) == WIDE_EVENT_FIELDS

    def test_defaults_and_overrides(self):
        event = wide_event(
            "request", "/search", query="(a b)", query_shape="k2t2",
            algorithm="stream-scan", rank="none", kernel="engine",
            duration_seconds=0.0123456789012, bytes_decoded=42,
            plan_cache_hit=True, posting_cache_hit=False,
            trace_id="t1", outcome="error", status=500,
            result_count=7, slow=True, timestamp=123.0)
        assert event["event"] == "request"
        assert event["route"] == "/search"
        assert event["duration_seconds"] == pytest.approx(
            0.012345679, abs=1e-9)  # rounded to 9 places
        assert event["timestamp"] == 123.0
        assert event["plan_cache_hit"] is True
        assert event["posting_cache_hit"] is False
        assert event["outcome"] == "error"
        assert event["status"] == 500

    def test_injectable_clock_stamps_timestamp(self):
        event = wide_event("query", "search", clock=lambda: 99.5)
        assert event["timestamp"] == 99.5

    @pytest.mark.parametrize("outcome", WIDE_EVENT_OUTCOMES)
    def test_all_published_outcomes_accepted(self, outcome):
        assert wide_event("query", "search",
                          outcome=outcome)["outcome"] == outcome

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="outcome"):
            wide_event("query", "search", outcome="fine")


class TestEventRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(0)

    def test_records_in_order(self):
        ring = EventRing(4)
        for n in range(3):
            ring.record({"n": n})
        assert [event["n"] for event in ring.events()] == [0, 1, 2]
        assert len(ring) == 3
        assert list(ring) == ring.events()

    def test_eviction_under_sustained_load(self):
        """A ring fed far past capacity keeps only the newest events,
        and the lifetime stats still account for every drop."""
        ring = EventRing(8)
        for n in range(1000):
            ring.record({"n": n})
        assert [event["n"] for event in ring.events()] == \
            list(range(992, 1000))
        stats = ring.stats()
        assert stats == {"capacity": 8, "recorded": 1000,
                         "retained": 8, "evicted": 992}
        assert ring.recorded == 1000
        assert ring.evicted == 992

    def test_concurrent_writers_lose_nothing_from_the_counts(self):
        ring = EventRing(16)
        barrier = threading.Barrier(4)

        def hammer(worker):
            barrier.wait()
            for n in range(500):
                ring.record({"worker": worker, "n": n})

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = ring.stats()
        assert stats["recorded"] == 2000
        assert stats["retained"] == 16
        assert stats["evicted"] == 1984

    def test_clear_keeps_lifetime_counts(self):
        ring = EventRing(4)
        for n in range(6):
            ring.record({"n": n})
        ring.clear()
        assert ring.events() == []
        assert ring.recorded == 6
