"""The SLO engine: objective parsing and deterministic burn rates."""

import pytest

from repro.obs import (DEFAULT_OBJECTIVES, SLO_SCHEMA_VERSION,
                       MetricsRegistry, SLOEngine, parse_objective,
                       wide_event)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class FakeSink:
    def __init__(self):
        self.events = []

    def emit(self, event, payload=None, **fields):
        self.events.append((event, dict(payload or {}, **fields)))


def _event(timestamp, outcome="ok", duration=0.001, route="/search"):
    return wide_event("request", route, duration_seconds=duration,
                      outcome=outcome,
                      status=200 if outcome == "ok" else 500,
                      timestamp=timestamp)


class TestParseObjective:
    def test_availability(self):
        objective = parse_objective("availability 99.9%")
        assert objective.kind == "availability"
        assert objective.target == pytest.approx(0.999)
        assert objective.error_budget == pytest.approx(0.001)
        assert objective.route is None
        assert objective.name == "availability_99_9"

    def test_latency(self):
        objective = parse_objective("latency p99 < 50ms")
        assert objective.kind == "latency"
        assert objective.target == pytest.approx(0.99)
        assert objective.threshold_seconds == pytest.approx(0.050)
        assert objective.as_dict()["threshold_ms"] == pytest.approx(50.0)

    def test_route_scoped(self):
        objective = parse_objective("/batch availability 99%")
        assert objective.route == "/batch"
        assert objective.matches(_event(0.0, route="/batch"))
        assert not objective.matches(_event(0.0, route="/search"))

    def test_unscoped_matches_every_route(self):
        objective = parse_objective("availability 99%")
        assert objective.matches(_event(0.0, route="/batch"))
        assert objective.matches(_event(0.0, route="/search"))

    def test_latency_good_events(self):
        objective = parse_objective("latency p99 < 50ms")
        assert objective.is_good(_event(0.0, duration=0.010))
        assert not objective.is_good(_event(0.0, duration=0.200))
        # an errored request spends latency budget too
        assert not objective.is_good(
            _event(0.0, outcome="error", duration=0.010))

    @pytest.mark.parametrize("spec", [
        "", "availability", "availability 99.9", "availability fast",
        "latency p99", "latency p99 < 50", "latency 50ms",
        "availability 0%", "availability 100%", "throughput 99%",
        "/search", "/search uptime 99%",
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_objective(spec)

    def test_defaults_parse(self):
        for spec in DEFAULT_OBJECTIVES:
            parse_objective(spec)


class TestSLOEngine:
    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(["availability 99.9%", "availability 99.9%"])

    def test_healthy_traffic_stays_ok(self):
        clock = FakeClock()
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           registry=MetricsRegistry())
        for n in range(100):
            engine.record(_event(clock.now + n * 0.01))
        assert engine.state("availability_99_9") == "ok"
        assert engine.breaches == 0

    def test_burn_rate_walks_ok_warn_page_deterministically(self):
        """A synthetic clock drives one objective through the full
        ladder: clean traffic (ok), a 1% error rate (warn: burn 6–14.4
        on both warn windows), then enough errors to cross 14.4 on
        both page windows (page) — with the breach counter, the sink
        event and the on_page hook all firing exactly once."""
        clock = FakeClock(now=50000.0)
        registry = MetricsRegistry()
        sink = FakeSink()
        pages = []
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           registry=registry, sink=sink,
                           on_page=lambda objective, info:
                           pages.append((objective.name, info)))
        name = "availability_99_9"

        seen = []
        timestamp = clock.now
        for _ in range(990):
            timestamp += 0.01
            engine.record(_event(timestamp))
            seen.append(engine.state(name))
        assert set(seen) == {"ok"}

        for _ in range(15):
            timestamp += 0.01
            engine.record(_event(timestamp, outcome="error"))
            seen.append(engine.state(name))
        # the ladder is strictly ok -> warn -> page, never skipping
        assert [state for n, state in enumerate(seen)
                if n == 0 or state != seen[n - 1]] \
            == ["ok", "warn", "page"]
        assert engine.state(name) == "page"

        assert engine.breaches == 1
        assert registry.counters["slo_breaches"] == 1
        assert [event for event, _ in sink.events] == ["slo_breach"]
        breach = sink.events[0][1]
        assert breach["name"] == name
        assert breach["from"] == "warn"
        assert breach["state"] == "page"
        assert pages == [(name, breach)]
        assert engine.last_breach == breach

        gauges = registry.gauges
        assert gauges[f"slo_state:{name}"]["value"] == 2  # page
        assert gauges["slo_objectives_page"]["value"] == 1
        assert gauges["slo_worst_burn_rate"]["value"] >= 14.4

    def test_recovery_to_ok_when_the_windows_drain(self):
        clock = FakeClock(now=50000.0)
        registry = MetricsRegistry()
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           registry=registry)
        timestamp = clock.now
        for outcome in ["ok"] * 990 + ["error"] * 15:
            timestamp += 0.01
            engine.record(_event(timestamp, outcome=outcome))
        assert engine.state("availability_99_9") == "page"
        # slide every short window past the burst
        clock.now = timestamp + 4000.0
        engine.evaluate()
        assert engine.state("availability_99_9") == "ok"
        assert registry.gauges["slo_state:availability_99_9"]["value"] \
            == 0
        # the page was a real transition, so it stays counted
        assert engine.breaches == 1

    def test_latency_objective_pages_on_slow_but_successful_traffic(self):
        clock = FakeClock()
        engine = SLOEngine(["latency p99 < 50ms"], clock=clock,
                           registry=MetricsRegistry())
        timestamp = clock.now
        for _ in range(50):
            timestamp += 0.2
            engine.record(_event(timestamp, duration=0.200))
        assert engine.state("latency_p99_50ms") == "page"

    def test_route_scoped_objective_ignores_other_routes(self):
        clock = FakeClock()
        engine = SLOEngine(["/search availability 99%"], clock=clock,
                           registry=MetricsRegistry())
        timestamp = clock.now
        for _ in range(50):
            timestamp += 0.1
            engine.record(_event(timestamp, outcome="error",
                                 route="/batch"))
        assert engine.state("search_availability_99") == "ok"
        assert engine.evaluate()[0]["events"] == 0

    def test_as_json_is_the_sloz_document(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock, registry=MetricsRegistry())
        engine.record(_event(clock.now))
        document = engine.as_json()
        assert document["schema"] == SLO_SCHEMA_VERSION
        assert document["generated_at"] == clock.now
        assert document["page_windows_seconds"] == [3600.0, 300.0]
        assert document["recorded"] == 1
        assert document["breaches"] == 0
        assert document["last_breach"] is None
        names = {objective["name"]
                 for objective in document["objectives"]}
        assert names == {"availability_99_9", "latency_p99_50ms"}
        for objective in document["objectives"]:
            assert objective["state"] == "ok"
            assert set(objective["burn_rates"]) == \
                {"3600", "300", "21600", "1800"}

    def test_window_capacity_bounds_memory(self):
        clock = FakeClock()
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           capacity=64, registry=MetricsRegistry())
        timestamp = clock.now
        for _ in range(1000):
            timestamp += 0.001
            engine.record(_event(timestamp))
        tracker = engine._trackers["availability_99_9"]
        for window in tracker.windows.values():
            assert window.total <= 64
        assert tracker.total == 1000  # lifetime count survives

    def test_events_without_timestamp_use_the_clock(self):
        clock = FakeClock(now=777.0)
        engine = SLOEngine(["availability 99.9%"], clock=clock,
                           registry=MetricsRegistry())
        event = _event(0.0)
        event["timestamp"] = None
        engine.record(event)
        tracker = engine._trackers["availability_99_9"]
        window = tracker.windows[300.0]
        assert window._events[0][0] == 777.0
