"""Span nesting, snapshot JSON shape, and report rendering."""

import json

from repro.obs import MetricsRegistry, format_report


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner-a"):
                pass
            with registry.span("inner-b"):
                pass
        spans = registry.spans
        assert [span.name for span in spans] == ["outer"]
        assert [child.name for child in spans[0].children] == \
            ["inner-a", "inner-b"]

    def test_durations_are_monotonic(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        outer = registry.spans[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_sibling_spans_form_a_forest(self):
        registry = MetricsRegistry()
        with registry.span("first"):
            pass
        with registry.span("second"):
            pass
        assert [span.name for span in registry.spans] == \
            ["first", "second"]


class TestSnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.inc("postings_consumed", 10)
        registry.observe("posting_list_length", 4)
        with registry.span("stream-scan"):
            with registry.span("rank"):
                pass
        return registry

    def test_shape_and_json_round_trip(self):
        snapshot = self._populated().snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms",
                                 "phases", "spans"}
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["counters"]["postings_consumed"] == 10
        assert decoded["histograms"]["posting_list_length"]["count"] == 1
        assert set(decoded["phases"]) == {"stream-scan", "rank"}
        (scan,) = decoded["spans"]
        assert scan["name"] == "stream-scan"
        assert scan["children"][0]["name"] == "rank"
        assert scan["seconds"] >= scan["children"][0]["seconds"]

    def test_phases_aggregate_repeated_spans(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.span("rank"):
                pass
        snapshot = registry.snapshot()
        assert len(snapshot["spans"]) == 3
        assert set(snapshot["phases"]) == {"rank"}

    def test_nested_same_name_span_not_double_counted(self):
        registry = MetricsRegistry()
        with registry.span("index-load"):
            with registry.span("index-load"):
                pass
        outer = registry.spans[0]
        assert registry.snapshot()["phases"]["index-load"] == \
            round(outer.duration, 9)


class TestReport:
    def test_report_lists_every_section(self):
        registry = MetricsRegistry()
        registry.inc("results_emitted", 3)
        registry.observe("posting_list_length", 7)
        with registry.span("stream-scan"):
            pass
        text = format_report(registry.snapshot())
        for section in ("counters", "histograms", "phases", "trace"):
            assert section in text
        assert "results_emitted" in text
        assert "stream-scan" in text

    def test_empty_snapshot_message(self):
        assert format_report(MetricsRegistry().snapshot()) == \
            "(no metrics recorded)"
