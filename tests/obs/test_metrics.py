"""Unit tests for the metrics registry: counters, histograms, scoping."""

import threading

import pytest

from repro.obs import (NULL_METRICS, Gauge, Histogram, MetricsRegistry,
                       get_metrics, metrics_scope, set_global_metrics)
from repro.obs.metrics import RESERVOIR_SIZE


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a")
        assert registry.counter("a") == 2

    def test_inc_with_value(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        registry.inc("a", 7)
        assert registry.counter("a") == 12

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0

    def test_declare_creates_zeros_without_clobbering(self):
        registry = MetricsRegistry()
        registry.inc("existing", 3)
        registry.declare("existing", "fresh")
        assert registry.counters == {"existing": 3, "fresh": 0}

    def test_counters_view_is_sorted_copy(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        view = registry.counters
        assert list(view) == ["a", "b"]
        view["c"] = 1  # mutating the copy must not touch the registry
        assert registry.counter("c") == 0


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 5)
        registry.gauge_inc("depth", 3)
        registry.gauge_dec("depth")
        assert registry.gauge("depth") == 7

    def test_unknown_gauge_reads_zero(self):
        assert MetricsRegistry().gauge("never") == 0

    def test_extremes_bracket_the_excursion(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.set(-4)
        gauge.set(2)
        assert gauge.as_dict() == {"value": 2, "min": -4, "max": 10}
        gauge.reset_extremes()
        assert gauge.as_dict() == {"value": 2, "min": 2, "max": 2}

    def test_inc_from_nothing_starts_at_zero(self):
        registry = MetricsRegistry()
        registry.gauge_inc("inflight")
        registry.gauge_dec("inflight")
        data = registry.gauges["inflight"]
        assert data == {"value": 0, "min": 0, "max": 1}

    def test_gauges_view_is_sorted_copy(self):
        registry = MetricsRegistry()
        registry.gauge_set("b", 1)
        registry.gauge_set("a", 2)
        view = registry.gauges
        assert list(view) == ["a", "b"]
        view["c"] = {"value": 9}
        assert registry.gauge("c") == 0

    def test_snapshot_includes_gauges(self):
        registry = MetricsRegistry()
        registry.gauge_set("rss_bytes", 1000)
        registry.gauge_set("rss_bytes", 800)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["rss_bytes"] == \
            {"value": 800, "min": 800, "max": 1000}

    def test_report_renders_gauges_section(self):
        from repro.obs import format_report
        registry = MetricsRegistry()
        registry.gauge_set("posting_cache_bytes", 4096)
        text = format_report(registry.snapshot())
        assert "gauges" in text
        assert "posting_cache_bytes" in text
        assert "value=4096" in text

    def test_concurrent_gauge_updates_are_exact(self):
        registry = MetricsRegistry()
        threads, rounds = 8, 2_000

        def work():
            for _ in range(rounds):
                registry.gauge_inc("shared")

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.gauge("shared") == threads * rounds


class TestHistograms:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (4, 1, 7):
            registry.observe("sizes", value)
        histogram = registry.histogram("sizes")
        assert histogram.count == 3
        assert histogram.total == 12
        assert histogram.minimum == 1
        assert histogram.maximum == 7
        assert histogram.mean == 4

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("missing")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.as_dict()["min"] is None

    def test_empty_histogram_survives_every_renderer(self):
        """Regression: a histogram declared but never observed must
        flow through as_dict, format_report and to_openmetrics with
        count=0/sum=0 rather than crashing on the missing quantiles."""
        from repro.obs import (format_report, parse_openmetrics,
                               to_openmetrics)
        histogram = Histogram()
        data = histogram.as_dict()
        assert data["count"] == 0
        assert data["sum"] == 0.0
        assert data["min"] is None and data["max"] is None

        snapshot = {"counters": {}, "histograms": {"quiet_seconds": data},
                    "phases": {}}
        report = format_report(snapshot)
        assert "quiet_seconds" in report
        assert "count=0" in report
        assert "sum=0.000" in report

        text = to_openmetrics(snapshot)
        assert "repro_quiet_seconds_count 0" in text
        assert "repro_quiet_seconds_sum 0.0" in text
        assert "quantile" not in text  # no series without samples
        families = parse_openmetrics(text)
        samples = {suffix: value for suffix, _, value in
                   families["repro_quiet_seconds"]["samples"]}
        assert samples == {"_count": 0.0, "_sum": 0.0}

    def test_quantiles_exact_for_small_runs(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1
        assert histogram.quantile(0.5) == 51  # nearest rank
        assert histogram.quantile(0.9) == 91
        assert histogram.quantile(0.99) == 100
        assert histogram.quantile(1.0) == 100

    def test_quantile_validation_and_empty(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        histogram.observe(3.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_as_dict_includes_quantiles_and_min(self):
        registry = MetricsRegistry()
        for value in (5, 1, 9, 7, 3):
            registry.observe("latency", value)
        data = registry.histogram("latency").as_dict()
        assert data["min"] == 1
        assert data["p50"] == 5
        assert data["p90"] == 9
        assert data["p99"] == 9
        assert set(data) == {"count", "sum", "min", "max", "mean",
                             "p50", "p90", "p99"}

    def test_reservoir_keeps_quantiles_honest_past_capacity(self):
        histogram = Histogram()
        total = RESERVOIR_SIZE * 8
        for value in range(total):  # uniform 0..total-1
            histogram.observe(value)
        assert histogram.count == total
        assert len(histogram._samples) == RESERVOIR_SIZE
        # the reservoir is a uniform sample: p50 within 10% of truth
        assert abs(histogram.quantile(0.5) - total / 2) < total * 0.1
        assert histogram.quantile(0.99) > histogram.quantile(0.5)

    def test_reservoir_is_deterministic(self):
        def build():
            histogram = Histogram()
            for value in range(RESERVOIR_SIZE * 3):
                histogram.observe(value)
            return histogram.quantile(0.9)
        assert build() == build()

    def test_report_renders_quantiles(self):
        from repro.obs import format_report
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.90):
            registry.observe("search_seconds", value)
        text = format_report(registry.snapshot())
        assert "p50=" in text
        assert "p90=" in text
        assert "p99=" in text


class TestHistogramQuantileEdgeCases:
    """Degenerate distributions must render the *same* p50/p90/p99 in
    the human report and the OpenMetrics exposition."""

    @staticmethod
    def _quantiles_everywhere(registry, name):
        """(as_dict, report-line, exposition-series) for ``name``."""
        from repro.obs import (format_report, parse_openmetrics,
                               to_openmetrics)
        snapshot = registry.snapshot()
        data = snapshot["histograms"][name]
        line = next(line for line in
                    format_report(snapshot).splitlines()
                    if line.lstrip().startswith(name))
        series = {labels["quantile"]: value
                  for suffix, labels, value in
                  parse_openmetrics(to_openmetrics(snapshot))
                  [f"repro_{name}"]["samples"]
                  if suffix == "" and "quantile" in labels}
        return data, line, series

    def _assert_consistent(self, registry, name, expected):
        data, line, series = self._quantiles_everywhere(registry, name)
        for q_key, q_label in (("p50", "0.5"), ("p90", "0.9"),
                               ("p99", "0.99")):
            assert data[q_key] == expected
            assert f"{q_key}={expected:.3f}" in line
            assert series[q_label] == expected

    def test_single_observation_collapses_all_quantiles(self):
        registry = MetricsRegistry()
        registry.observe("lat_seconds", 0.25)
        histogram = registry.histogram("lat_seconds")
        assert histogram.count == 1
        self._assert_consistent(registry, "lat_seconds", 0.25)

    def test_exactly_full_reservoir_stays_exact(self):
        registry = MetricsRegistry()
        for value in range(1, RESERVOIR_SIZE + 1):  # 1..1024
            registry.observe("lat_seconds", float(value))
        histogram = registry.histogram("lat_seconds")
        assert histogram.count == RESERVOIR_SIZE
        assert len(histogram._samples) == RESERVOIR_SIZE
        # nearest rank over the exact sample: q -> int(q * 1024) + 1
        data, line, series = self._quantiles_everywhere(
            registry, "lat_seconds")
        for q_key, q_label, expected in (("p50", "0.5", 513.0),
                                         ("p90", "0.9", 922.0),
                                         ("p99", "0.99", 1014.0)):
            assert data[q_key] == expected
            assert f"{q_key}={expected:.3f}" in line
            assert series[q_label] == expected

    def test_all_equal_values_pin_every_quantile(self):
        registry = MetricsRegistry()
        for _ in range(RESERVOIR_SIZE + 7):  # past the reservoir too
            registry.observe("lat_seconds", 3.5)
        histogram = registry.histogram("lat_seconds")
        assert histogram.minimum == histogram.maximum == 3.5
        self._assert_consistent(registry, "lat_seconds", 3.5)


class TestScoping:
    def test_disabled_by_default(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_scope_activates_and_isolates(self):
        with metrics_scope() as outer:
            outer_seen = get_metrics()
            assert outer_seen is outer
            with metrics_scope() as inner:
                get_metrics().inc("x")
                assert inner.counter("x") == 1
            assert outer.counter("x") == 0
            assert get_metrics() is outer
        assert get_metrics() is NULL_METRICS

    def test_scope_accepts_existing_registry(self):
        registry = MetricsRegistry()
        with metrics_scope(registry) as active:
            assert active is registry
            get_metrics().inc("hit")
        assert registry.counter("hit") == 1

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with metrics_scope():
                raise RuntimeError("boom")
        assert get_metrics() is NULL_METRICS

    def test_global_default_below_scopes(self):
        fallback = MetricsRegistry()
        previous = set_global_metrics(fallback)
        try:
            get_metrics().inc("global_hit")
            assert fallback.counter("global_hit") == 1
            with metrics_scope() as scoped:
                get_metrics().inc("scoped_hit")
            assert scoped.counter("scoped_hit") == 1
            assert fallback.counter("scoped_hit") == 0
        finally:
            set_global_metrics(previous)
        assert get_metrics() is NULL_METRICS


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        NULL_METRICS.inc("a")
        NULL_METRICS.observe("h", 1.0)
        NULL_METRICS.declare("a", "b")
        NULL_METRICS.gauge_set("g", 5)
        NULL_METRICS.gauge_inc("g")
        NULL_METRICS.gauge_dec("g")
        with NULL_METRICS.span("phase"):
            pass
        with NULL_METRICS.timer("phase"):
            pass
        assert NULL_METRICS.counter("a") == 0
        assert NULL_METRICS.gauge("g") == 0
        snapshot = NULL_METRICS.snapshot()
        assert snapshot == {"counters": {}, "gauges": {},
                            "histograms": {}, "phases": {}, "spans": []}


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        threads = 8
        rounds = 5_000

        def work():
            for _ in range(rounds):
                registry.inc("shared")
                registry.observe("values", 1)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("shared") == threads * rounds
        assert registry.histogram("values").count == threads * rounds

    def test_spans_from_threads_do_not_interleave(self):
        registry = MetricsRegistry()

        def work(name):
            with registry.span(name):
                with registry.span(f"{name}-child"):
                    pass

        workers = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        spans = registry.spans
        assert len(spans) == 4  # one root per thread
        for span in spans:
            assert [child.name for child in span.children] == \
                [f"{span.name}-child"]
