"""Brute-force differential-testing oracle for cohesive keyword search.

An *independent* implementation of the paper's Definitions 1-3, written
straight from their text: enumerate every candidate assignment of query
occurrences to keyword instances, keep the assignments that are
embeddings (Def. 2), and report each LCA with its minimum MCT size
(Def. 3).  No stacks, no partition lattice, no code shared with
:mod:`repro.core.engine`, :mod:`repro.core.lattice_machine` or
:mod:`repro.core.semantics` — even the Dewey helpers are re-derived
here — so agreement with the engine is evidence, not tautology.

Exponential in the number of query occurrences; use on small trees and
queries only (the hypothesis suites keep both tiny).
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Union

from repro.core.parser import parse_query
from repro.core.query import Query, Term
from repro.index.tokenizer import default_tokenizer
from repro.tree.tree import DataTree

Code = tuple

#: Hard cap on enumerated assignments, to keep accidents cheap.
MAX_ASSIGNMENTS = 2_000_000


# -- Dewey helpers, re-derived (tuples compare in document order) -----------

def _lca(a: Code, b: Code) -> Code:
    """Longest common prefix of two Dewey codes."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return a[:n]


def _lca_many(codes) -> Code:
    acc = codes[0]
    for code in codes[1:]:
        acc = _lca(acc, code)
    return acc


def _in_subtree(root: Code, node: Code) -> bool:
    """True iff ``node`` is ``root`` or a descendant of it, i.e.
    lca(node, root) == root."""
    return node[:len(root)] == root


def _mct_edges(root: Code, codes) -> int:
    """Edges of the minimal connecting tree: the union of the paths from
    ``root`` down to every code (Def. 3's MCT size)."""
    edges = set()
    for code in codes:
        while len(code) > len(root):
            edges.add(code)
            code = code[:-1]
    return len(edges)


# -- Def. 1-3, literally ----------------------------------------------------

def keyword_instances(tree: DataTree, tokenizer=None) -> dict:
    """keyword → {node code → occurrence count} over ``tree`` (Def. 1's
    instance relation: a node is an instance of every keyword its label
    or value contains)."""
    tokenizer = tokenizer or default_tokenizer()
    instances: dict[str, dict[Code, int]] = {}
    for node in tree:
        for keyword, count in tokenizer.counts(node.full_text()).items():
            instances.setdefault(keyword, {})[node.code] = count
    return instances


def _is_embedding(query: Query, assignment, instances) -> bool:
    """Def. 2, condition by condition, on one candidate assignment."""
    # (a) Multiplicity: if m occurrences of keyword k map to node n,
    # then n must contain k at least m times.
    demanded: Counter = Counter()
    for occurrence, node in zip(query.occurrences, assignment):
        demanded[(node, occurrence.keyword.lower())] += 1
    for (node, keyword), count in demanded.items():
        if instances.get(keyword, {}).get(node, 0) < count:
            return False
    # (b) Cohesiveness: for every (non-root) term t, the instances of
    # t's occurrences are impenetrable — either they all coincide on
    # one node, or no instance of an occurrence outside t falls in the
    # subtree rooted at their LCA.
    for term in query.terms:
        if term.term_id == 0:
            continue  # no occurrences outside the query itself
        member_ids = {occ.occurrence_id for occ in term.occurrences()}
        inside = [assignment[i] for i in sorted(member_ids)]
        if len(set(inside)) == 1:
            continue
        fence = _lca_many(inside)
        for i, node in enumerate(assignment):
            if i not in member_ids and _in_subtree(fence, node):
                return False
    return True


def oracle_search(tree: DataTree, query: Union[str, Query],
                  tokenizer=None) -> list[tuple[Code, int]]:
    """All cohesive results of ``query`` on ``tree``, by enumeration.

    Returns ``(lca code, lca size)`` pairs ranked as Def. 3 prescribes:
    ascending size, ties in document order.  Empty when some keyword has
    no instance.
    """
    if isinstance(query, str):
        query = parse_query(query)
    instances = keyword_instances(tree, tokenizer)
    candidate_lists = []
    total = 1
    for occurrence in query.occurrences:
        nodes = sorted(instances.get(occurrence.keyword.lower(), {}))
        if not nodes:
            return []
        candidate_lists.append(nodes)
        total *= len(nodes)
        if total > MAX_ASSIGNMENTS:
            raise ValueError(f"{total} candidate assignments; "
                             f"the oracle is for small inputs only")
    best: dict[Code, int] = {}
    for assignment in product(*candidate_lists):
        if not _is_embedding(query, assignment, instances):
            continue
        root = _lca_many(assignment)
        size = _mct_edges(root, assignment)
        if root not in best or size < best[root]:
            best[root] = size
    return sorted(best.items(), key=lambda item: (item[1], item[0]))


def oracle_term_instances(query: Query) -> list[Term]:
    """The non-root terms of ``query`` (convenience for assertions)."""
    return [term for term in query.terms if term.term_id != 0]
