"""End-to-end tests of the command-line interface."""

import json
import logging

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def document(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dblp.xml"
    assert main(["generate", "dblp", str(path), "--scale", "20",
                 "--seed", "4"]) == 0
    return path


class TestGenerateAndStats:
    def test_stats(self, document, capsys):
        assert main(["stats", str(document)]) == 0
        out = capsys.readouterr().out
        assert "# nodes" in out
        assert "maximum depth" in out

    def test_generate_all_datasets(self, tmp_path):
        for name in ("psd", "nasa", "baseball", "xmark"):
            target = tmp_path / f"{name}.xml"
            assert main(["generate", name, str(target),
                         "--scale", "5"]) == 0
            assert target.exists()


class TestIndexAndSearch:
    def test_index_then_search(self, document, tmp_path, capsys):
        store = tmp_path / "dblp.idx"
        assert main(["index", str(document), str(store)]) == 0
        capsys.readouterr()
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--index", str(store)]) == 0
        out = capsys.readouterr().out
        assert "result(s)" in out
        assert "bib/article" in out

    def test_search_without_store(self, document, capsys):
        assert main(["search", str(document), "(lei chen)"]) == 0
        assert "result(s)" in capsys.readouterr().out

    def test_search_vector_ranking(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--rank", "vector"]) == 0
        assert "score=" in capsys.readouterr().out

    @pytest.mark.parametrize("baseline", ["slca", "elca", "lcasz", "saone"])
    def test_baselines(self, document, baseline, capsys):
        assert main(["search", str(document), "(lei chen yi guo)",
                     "--algorithm", baseline]) == 0
        assert "result(s)" in capsys.readouterr().out

    def test_top_limits_output(self, document, capsys):
        assert main(["search", str(document), "(title)", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert len([line for line in out.splitlines()
                    if line.startswith("r")]) <= 2


class TestAdvancedSearch:
    def test_skyline_ranking(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--rank", "skyline"]) == 0
        assert "terms=" in capsys.readouterr().out

    def test_top_k(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--top-k", "1"]) == 0
        assert "-- 1 result(s)" in capsys.readouterr().out

    def test_max_size(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--max-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "size=2" in out
        assert "size=3" not in out and "size=4" not in out

    def test_witness(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--witness", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "author" in out

    def test_streaming_index(self, document, tmp_path, capsys):
        store = tmp_path / "stream.idx"
        assert main(["index", str(document), str(store),
                     "--stream"]) == 0
        capsys.readouterr()
        assert main(["search", str(document), "(lei chen)",
                     "--index", str(store)]) == 0
        assert "result(s)" in capsys.readouterr().out


class TestIndexSubcommands:
    """`index build|merge|inspect`, formats and the legacy alias."""

    def test_build_defaults_to_v2(self, document, tmp_path, capsys):
        store = tmp_path / "dblp.idx2"
        assert main(["index", "build", str(document), str(store)]) == 0
        out = capsys.readouterr().out
        assert "(v2)" in out
        assert store.read_bytes().startswith(b"CKSIDX2\n")

    def test_build_v1_format(self, document, tmp_path, capsys):
        store = tmp_path / "dblp.idx"
        assert main(["index", "build", str(document), str(store),
                     "--format", "v1"]) == 0
        assert "(v1)" in capsys.readouterr().out
        assert store.read_bytes().startswith(b"CKSIDX1\n")

    def test_legacy_spelling_still_builds(self, document, tmp_path,
                                          caplog):
        store = tmp_path / "legacy.idx"
        with caplog.at_level(logging.WARNING, logger="repro.cli"):
            assert main(["index", str(document), str(store)]) == 0
        assert store.exists()
        assert any("deprecated" in record.getMessage()
                   for record in caplog.records)

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_search_autodetects_format(self, document, tmp_path, fmt,
                                       capsys):
        store = tmp_path / f"auto.{fmt}"
        assert main(["index", "build", str(document), str(store),
                     "--format", fmt]) == 0
        capsys.readouterr()
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--index", str(store)]) == 0
        assert "bib/article" in capsys.readouterr().out

    def test_inspect_v2(self, document, tmp_path, capsys):
        store = tmp_path / "inspect.idx2"
        assert main(["index", "build", str(document), str(store)]) == 0
        capsys.readouterr()
        assert main(["index", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "CKSIDX2" in out
        assert "segments" in out and "dead bytes" in out

    def test_inspect_json_flag_emits_the_report_as_json(
            self, document, tmp_path, capsys):
        store = tmp_path / "inspect.idx2"
        assert main(["index", "build", str(document), str(store)]) == 0
        capsys.readouterr()
        assert main(["index", "inspect", str(store), "--json"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out)
        assert summary["format"] == "CKSIDX2"
        assert summary["segments"] >= 1

    def test_merge_upgrades_v1_to_v2(self, document, tmp_path, capsys):
        store = tmp_path / "upgrade.idx"
        assert main(["index", "build", str(document), str(store),
                     "--format", "v1"]) == 0
        capsys.readouterr()
        assert main(["index", "merge", str(store)]) == 0
        out = capsys.readouterr().out
        assert "CKSIDX1" in out and "CKSIDX2" in out
        assert store.read_bytes().startswith(b"CKSIDX2\n")
        assert main(["search", str(document), "(lei chen)",
                     "--index", str(store)]) == 0

    def test_merge_to_separate_output(self, document, tmp_path, capsys):
        source = tmp_path / "src.idx2"
        target = tmp_path / "dst.idx2"
        assert main(["index", "build", str(document), str(source)]) == 0
        assert main(["index", "merge", str(source), "--output",
                     str(target)]) == 0
        assert target.exists() and source.exists()

    def test_inspect_bad_file_reports_error(self, tmp_path, capsys):
        junk = tmp_path / "junk.idx"
        junk.write_bytes(b"not an index at all")
        assert main(["index", "inspect", str(junk)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExperiment:
    def test_experiment_runs(self, capsys):
        assert main(["experiment", "baseball", "--scale", "6"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Table 4" in out
        assert "MAP=" in out


class TestExplain:
    def test_explain_without_document(self, capsys):
        assert main(["explain", "(XML (John Smith))"]) == 0
        out = capsys.readouterr().out
        assert "reduced lattice" in out
        assert "term tree" in out

    def test_explain_with_document(self, document, capsys):
        assert main(["explain", "((Lei Chen) (Yi Guo))",
                     "--document", str(document)]) == 0
        assert "instance(s)" in capsys.readouterr().out

    def test_explain_against_index_emits_full_profile(self, document,
                                                      tmp_path, capsys):
        store = tmp_path / "dblp.idx"
        assert main(["index", str(document), str(store)]) == 0
        capsys.readouterr()
        assert main(["explain", "((Lei Chen) (Yi Guo))",
                     "--index", str(store), "--format", "json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["schema"] == 1
        # the acceptance bar: phases, lattice, caches and bytes decoded
        # are all populated from a real run against the store
        assert profile["phases"]["stream-scan"] > 0
        assert profile["phases"]["lattice-build"] > 0
        assert profile["lattice"]["reduced_nodes"] >= 1
        assert profile["lattice"]["max_term_cardinality"] == 2
        assert profile["caches"]["plan_cache"]["misses"] == 1
        assert profile["bytes_decoded"] > 0
        for stats in profile["keywords"].values():
            assert stats["postings"] > 0
            assert stats["bytes"] > 0
        assert profile["result_count"] > 0
        assert profile["top_scores"]

    def test_explain_tree_format_against_document(self, document,
                                                  capsys):
        assert main(["explain", "((Lei Chen) (Yi Guo))",
                     "--document", str(document),
                     "--format", "tree"]) == 0
        out = capsys.readouterr().out
        for section in ("lattice", "phases", "caches", "counters"):
            assert section in out

    def test_explain_json_without_data_is_an_error(self, capsys):
        assert main(["explain", "(a (b c))", "--format", "json"]) == 1
        assert "--index" in capsys.readouterr().err


class TestLattice:
    def test_lattice_report(self, capsys):
        assert main(["lattice",
                     "((XML Keyword Search) (Paul Cooper) (Mary Davis))"
                     ]) == 0
        out = capsys.readouterr().out
        assert "877" in out   # full lattice of 7 keywords
        assert "9" in out     # reduced lattice


class TestObservability:
    REQUIRED = ("postings_consumed", "stack_pushes", "lattice_nodes_built",
                "lattice_nodes_pruned", "results_emitted")

    def test_metrics_report_printed(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "phases" in out
        for name in self.REQUIRED:
            assert name in out, name
        assert "stream-scan" in out

    def test_metrics_json_dump(self, document, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--metrics-json", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        for name in self.REQUIRED:
            assert name in snapshot["counters"], name
        assert snapshot["counters"]["results_emitted"] > 0
        for phase in ("index-load", "parse", "lattice-build",
                      "stream-scan", "rank"):
            assert phase in snapshot["phases"], phase

    def test_metrics_json_with_no_results_keeps_catalogue(
            self, document, tmp_path, capsys):
        target = tmp_path / "empty.json"
        assert main(["search", str(document), "(a (b c))",
                     "--metrics-json", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        for name in self.REQUIRED:
            assert name in snapshot["counters"], name
        assert snapshot["counters"]["results_emitted"] == 0

    def test_metrics_json_dash_prints_to_stdout(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--metrics-json", "-"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out[out.index("{"):])
        assert snapshot["counters"]["results_emitted"] > 0
        assert "search_seconds" in snapshot["histograms"]
        assert snapshot["histograms"]["search_seconds"]["p99"] is not None

    def test_slow_query_flag_reports_captures(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--slow-query-ms", "0"]) == 0
        assert "1 slow query captured" in capsys.readouterr().out

    def test_events_jsonl_flag_writes_events(self, document, tmp_path,
                                             capsys):
        target = tmp_path / "events.jsonl"
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--events-jsonl", str(target)]) == 0
        (event,) = [json.loads(line)
                    for line in target.read_text().splitlines()]
        assert event["schema"] == 1
        assert event["event"] == "query"
        assert event["result_count"] > 0

    def test_telemetry_port_serves_during_run(self, document, capsys):
        import urllib.request
        from repro.obs import parse_openmetrics
        from repro.runtime import session as session_module

        captured = {}
        original = session_module.SearchSession._serve_telemetry

        def spying(self, **kwargs):
            server = original(self, **kwargs)
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=5) as response:
                captured["health"] = json.loads(response.read())
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as response:
                captured["metrics"] = response.read().decode()
            return server

        session_module.SearchSession._serve_telemetry = spying
        try:
            assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                         "--telemetry-port", "0"]) == 0
        finally:
            session_module.SearchSession._serve_telemetry = original
        assert "telemetry on http://" in capsys.readouterr().out
        assert captured["health"]["status"] == "ok"
        parse_openmetrics(captured["metrics"])  # valid exposition
        # the CLI's scoped registry backs the scrape, and the session
        # tears the endpoint down with the run
        from repro.obs import NULL_METRICS, get_metrics
        assert get_metrics() is NULL_METRICS

    def test_metrics_with_baseline(self, document, capsys):
        # elca goes through KeywordMatches, so the baseline counters
        # appear; slca (definition-first) routes through the engine and
        # reports the engine catalogue instead.
        assert main(["search", str(document), "(lei chen)",
                     "--algorithm", "elca", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "baseline_lists_loaded" in out

    def test_log_level_flag(self, document, capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--log-level", "debug"]) == 0
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        assert any(getattr(h, "_repro_obs_handler", False)
                   for h in logger.handlers)
        # Re-leveling must adjust the existing handler, not stack one.
        assert main(["search", str(document), "(lei chen)",
                     "--log-level", "warning"]) == 0
        assert logger.level == logging.WARNING
        assert sum(1 for h in logger.handlers
                   if getattr(h, "_repro_obs_handler", False)) == 1

    def test_search_without_flags_leaves_metrics_off(self, document,
                                                     capsys):
        from repro.obs import NULL_METRICS, get_metrics
        assert main(["search", str(document), "(lei chen)"]) == 0
        assert get_metrics() is NULL_METRICS


class TestRuntimeFlags:
    """The session-backed flags: --algorithm, --repeat, --workload."""

    @pytest.mark.parametrize("algorithm",
                             ["cohesive", "machine", "slca", "elca",
                              "lcasz", "saone"])
    def test_algorithm_flag(self, document, algorithm, capsys):
        assert main(["search", str(document), "(lei chen yi guo)",
                     "--algorithm", algorithm]) == 0
        assert "result(s)" in capsys.readouterr().out

    def test_machine_agrees_with_cohesive(self, document, capsys):
        assert main(["search", str(document),
                     "((Lei Chen) (Yi Guo))"]) == 0
        engine_out = capsys.readouterr().out
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--algorithm", "machine"]) == 0
        assert capsys.readouterr().out == engine_out

    def test_baseline_flag_is_a_hard_error(self, document, capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--baseline", "slca"]) == 1
        # The pinned migration message (docs/API.md).
        assert ("error: --baseline was removed; use --algorithm slca "
                "(see docs/API.md, 'Migrating from the pre-session "
                "CLI')") in capsys.readouterr().err

    def test_baseline_error_names_the_requested_algorithm(
            self, document, capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--baseline", "elca"]) == 1
        assert "--algorithm elca" in capsys.readouterr().err

    def test_repeat_reports_cache_hits(self, document, capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "repeated 3x" in out
        assert "plan cache 2/3 hits" in out

    def test_repeat_populates_cache_counters(self, document, tmp_path,
                                             capsys):
        dump = tmp_path / "metrics.json"
        assert main(["search", str(document), "(lei chen)",
                     "--repeat", "2", "--metrics-json",
                     str(dump)]) == 0
        snapshot = json.loads(dump.read_text())
        assert snapshot["counters"]["plan_cache_hits"] == 1
        assert snapshot["counters"]["plan_cache_misses"] == 1
        assert snapshot["counters"]["posting_cache_hits"] >= 1

    def test_workload_batch(self, document, tmp_path, capsys):
        workload = tmp_path / "workload.txt"
        workload.write_text("(lei chen)\n"
                            "# a comment line\n"
                            "\n"
                            "(yi guo)\n"
                            "(lei chen)\n", encoding="utf-8")
        assert main(["search", str(document), "--workload",
                     str(workload)]) == 0
        out = capsys.readouterr().out
        assert "3 queries, one shared scan" in out
        assert "(lei chen)" in out and "(yi guo)" in out
        assert "plan cache hit rate" in out

    def test_workload_counts_match_single_queries(self, document,
                                                  tmp_path, capsys):
        assert main(["search", str(document), "(lei chen)"]) == 0
        single = capsys.readouterr().out.splitlines()[-1]
        count = single.split()[1]  # "-- N result(s)"
        workload = tmp_path / "workload.txt"
        workload.write_text("(lei chen)\n", encoding="utf-8")
        assert main(["search", str(document), "--workload",
                     str(workload)]) == 0
        out = capsys.readouterr().out
        assert f"{count} result(s) (lei chen)" in " ".join(out.split())

    def test_workload_batch_counters(self, document, tmp_path):
        workload = tmp_path / "workload.txt"
        workload.write_text("(lei chen)\n(yi guo)\n(lei chen)\n",
                            encoding="utf-8")
        dump = tmp_path / "metrics.json"
        assert main(["search", str(document), "--workload",
                     str(workload), "--metrics-json", str(dump)]) == 0
        counters = json.loads(dump.read_text())["counters"]
        assert counters["batch_queries"] == 3
        assert counters["batch_distinct_plans"] == 2
        assert counters["batch_scan_nodes"] > 0

    def test_empty_workload_is_an_error(self, document, tmp_path,
                                        capsys):
        workload = tmp_path / "empty.txt"
        workload.write_text("# only comments\n", encoding="utf-8")
        assert main(["search", str(document), "--workload",
                     str(workload)]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_missing_query_and_workload(self, document, capsys):
        assert main(["search", str(document)]) == 1
        assert "query or --workload" in capsys.readouterr().err


class TestJsonOutput:
    def test_search_format_json_is_the_wire_envelope(self, document,
                                                     capsys):
        from repro.server import wire
        assert main(["search", str(document), "(lei chen)",
                     "--format", "json"]) == 0
        body = json.loads(capsys.readouterr().out)
        wire.validate_response(body)
        assert body["schema"] == wire.WIRE_SCHEMA_VERSION
        assert body["query"] == "(lei chen)"
        assert body["result_count"] == len(body["results"]) > 0

    def test_search_format_json_carries_options(self, document,
                                                capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--algorithm", "slca", "--format", "json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["options"]["algorithm"] == "slca"

    def test_workload_format_json_is_the_batch_envelope(
            self, document, tmp_path, capsys):
        from repro.server import wire
        workload = tmp_path / "queries.txt"
        workload.write_text("(lei chen)\n(yi guo)\n")
        assert main(["search", str(document), "--workload",
                     str(workload), "--format", "json"]) == 0
        body = json.loads(capsys.readouterr().out)
        wire.validate_response(body)
        assert body["queries"] == ["(lei chen)", "(yi guo)"]
        assert len(body["answers"]) == 2


class TestServeSubcommand:
    def test_serve_forwards_arguments(self, monkeypatch):
        import repro.server
        calls = {}

        def spy(store, **kwargs):
            calls["store"] = store
            calls.update(kwargs)

        monkeypatch.setattr(repro.server, "serve", spy)
        assert main(["serve", "INDEX.ckx", "--port", "1234",
                     "--workers", "2", "--queue-limit", "3",
                     "--timeout", "5", "--no-watchdog"]) == 0
        assert calls["store"] == "INDEX.ckx"
        assert calls["port"] == 1234
        assert calls["workers"] == 2
        assert calls["queue_limit"] == 3
        assert calls["request_timeout"] == 5.0
        assert calls["watchdog_interval"] is None

    def test_serve_defaults(self, monkeypatch):
        import repro.server
        calls = {}
        monkeypatch.setattr(
            repro.server, "serve",
            lambda store, **kwargs: calls.update(kwargs))
        assert main(["serve", "INDEX.ckx"]) == 0
        assert calls["port"] == 8080
        assert calls["workers"] == 4
        assert calls["queue_limit"] == 16
        assert calls["watchdog_interval"] == 1.0
        assert calls["slow_query_ms"] is None
        assert calls["events_jsonl"] is None
        assert calls["slo"] is True  # default objectives

    def test_serve_observability_flags_forward(self, monkeypatch):
        import repro.server
        calls = {}
        monkeypatch.setattr(
            repro.server, "serve",
            lambda store, **kwargs: calls.update(kwargs))
        assert main(["serve", "INDEX.ckx",
                     "--slow-query-ms", "25",
                     "--events-jsonl", "wide.jsonl",
                     "--slo", "availability 99%",
                     "--slo", "/search latency p99 < 20ms"]) == 0
        assert calls["slow_query_ms"] == 25.0
        assert calls["events_jsonl"] == "wide.jsonl"
        assert calls["slo"] == ["availability 99%",
                                "/search latency p99 < 20ms"]


class TestDebugzSubcommand:
    @pytest.fixture()
    def live_server(self, document, tmp_path):
        from repro.runtime import SearchSession
        from repro.server import SearchServer
        store = tmp_path / "dblp.ckx"
        assert main(["index", str(document), str(store)]) == 0
        session = SearchSession.from_store(store)
        with SearchServer(session, index_path=store,
                          watchdog_interval=None) as server:
            yield server

    def test_debugz_prints_the_bundle(self, live_server, capsys):
        assert main(["debugz", live_server.url]) == 0
        bundle = json.loads(capsys.readouterr().out)
        assert bundle["schema"] == 1
        assert bundle["reason"] == "on_demand"

    def test_debugz_out_writes_the_file(self, live_server, tmp_path,
                                        capsys):
        target = tmp_path / "bundle.json"
        assert main(["debugz", live_server.url + "/",
                     "--out", str(target)]) == 0
        bundle = json.loads(target.read_text(encoding="utf-8"))
        assert bundle["schema"] == 1
        assert "reason=on_demand" in capsys.readouterr().out


class TestErrors:
    def test_bad_query_reports_error(self, document, capsys):
        assert main(["search", str(document), "((a))"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_xml_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>")
        assert main(["stats", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestTrace:
    QUERY = "((Lei Chen) (Yi Guo))"

    def test_trace_writes_chrome_trace(self, document, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", str(document), self.QUERY,
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "Perfetto" in printed or "perfetto" in printed
        trace = json.loads(out.read_text(encoding="utf-8"))
        events = [event for event in trace["traceEvents"]
                  if event["ph"] == "X"]
        assert events, "trace must contain complete events"
        trace_ids = {event["args"]["trace_id"] for event in events}
        assert len(trace_ids) == 1
        root = next(event for event in events
                    if event["args"]["parent_id"] is None)
        assert root["name"] == "search"
        # memory accounting is on by default
        assert "mem_alloc_delta" in root["args"]
        assert "posting_decode_bytes" in root["args"]

    def test_trace_no_memory_flag(self, document, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", str(document), self.QUERY,
                     "--out", str(out), "--no-memory"]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        roots = [event for event in trace["traceEvents"]
                 if event["ph"] == "X"
                 and event["args"]["parent_id"] is None]
        assert roots[0]["args"]["mem_alloc_delta"] == 0

    def test_trace_against_prebuilt_index(self, document, tmp_path):
        store = tmp_path / "dblp.idx"
        assert main(["index", str(document), str(store)]) == 0
        out = tmp_path / "trace.json"
        assert main(["trace", str(document), self.QUERY,
                     "--index", str(store), "--out", str(out)]) == 0
        assert json.loads(out.read_text(encoding="utf-8"))["traceEvents"]

    def test_search_trace_dir_writes_one_file_per_trace(
            self, document, tmp_path, capsys):
        traces = tmp_path / "traces"
        assert main(["search", str(document), self.QUERY,
                     "--trace-dir", str(traces)]) == 0
        files = sorted(traces.glob("trace-*.json"))
        assert len(files) == 1
        trace = json.loads(files[0].read_text(encoding="utf-8"))
        names = {event["name"] for event in trace["traceEvents"]
                 if event["ph"] == "X"}
        assert "search" in names
        assert "trace(s)" in capsys.readouterr().out

    def test_trace_dir_with_workload_writes_per_query_traces(
            self, document, tmp_path):
        workload = tmp_path / "workload.txt"
        workload.write_text(f"{self.QUERY}\n{self.QUERY}\n",
                            encoding="utf-8")
        traces = tmp_path / "traces"
        assert main(["search", str(document), "--workload",
                     str(workload), "--trace-dir", str(traces)]) == 0
        assert len(list(traces.glob("trace-*.json"))) >= 1


class TestProfiling:
    QUERY = "((Lei Chen) (Yi Guo))"

    def test_profile_writes_collapsed_and_speedscope(
            self, document, tmp_path, capsys):
        out = tmp_path / "flame.folded"
        assert main(["profile", str(document), self.QUERY,
                     "--out", str(out), "--hz", "500",
                     "--repeat", "200"]) == 0
        printed = capsys.readouterr().out
        assert "stack sample(s)" in printed
        folded = out.read_text(encoding="utf-8").strip()
        assert folded, "collapsed profile is empty"
        assert any("repro" in line for line in folded.splitlines())
        twin = out.with_suffix(".speedscope.json")
        doc = json.loads(twin.read_text(encoding="utf-8"))
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["weights"]

    def test_profile_against_prebuilt_index(self, document, tmp_path):
        store = tmp_path / "dblp.idx"
        assert main(["index", "build", str(document), str(store)]) == 0
        out = tmp_path / "flame.folded"
        assert main(["profile", str(document), self.QUERY,
                     "--index", str(store), "--out", str(out),
                     "--hz", "500", "--repeat", "200"]) == 0
        assert out.read_text(encoding="utf-8").strip()

    def test_search_flame_out_writes_both_artifacts(
            self, document, tmp_path, capsys):
        out = tmp_path / "search.folded"
        assert main(["search", str(document), self.QUERY,
                     "--repeat", "200", "--flame-out", str(out),
                     "--profile-hz", "500"]) == 0
        assert "stack sample(s)" in capsys.readouterr().out
        assert out.read_text(encoding="utf-8").strip()
        assert out.with_suffix(".speedscope.json").exists()
