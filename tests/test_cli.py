"""End-to-end tests of the command-line interface."""

import json
import logging

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def document(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dblp.xml"
    assert main(["generate", "dblp", str(path), "--scale", "20",
                 "--seed", "4"]) == 0
    return path


class TestGenerateAndStats:
    def test_stats(self, document, capsys):
        assert main(["stats", str(document)]) == 0
        out = capsys.readouterr().out
        assert "# nodes" in out
        assert "maximum depth" in out

    def test_generate_all_datasets(self, tmp_path):
        for name in ("psd", "nasa", "baseball", "xmark"):
            target = tmp_path / f"{name}.xml"
            assert main(["generate", name, str(target),
                         "--scale", "5"]) == 0
            assert target.exists()


class TestIndexAndSearch:
    def test_index_then_search(self, document, tmp_path, capsys):
        store = tmp_path / "dblp.idx"
        assert main(["index", str(document), str(store)]) == 0
        capsys.readouterr()
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--index", str(store)]) == 0
        out = capsys.readouterr().out
        assert "result(s)" in out
        assert "bib/article" in out

    def test_search_without_store(self, document, capsys):
        assert main(["search", str(document), "(lei chen)"]) == 0
        assert "result(s)" in capsys.readouterr().out

    def test_search_vector_ranking(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--rank", "vector"]) == 0
        assert "score=" in capsys.readouterr().out

    @pytest.mark.parametrize("baseline", ["slca", "elca", "lcasz", "saone"])
    def test_baselines(self, document, baseline, capsys):
        assert main(["search", str(document), "(lei chen yi guo)",
                     "--baseline", baseline]) == 0
        assert "result(s)" in capsys.readouterr().out

    def test_top_limits_output(self, document, capsys):
        assert main(["search", str(document), "(title)", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert len([line for line in out.splitlines()
                    if line.startswith("r")]) <= 2


class TestAdvancedSearch:
    def test_skyline_ranking(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--rank", "skyline"]) == 0
        assert "terms=" in capsys.readouterr().out

    def test_top_k(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--top-k", "1"]) == 0
        assert "-- 1 result(s)" in capsys.readouterr().out

    def test_max_size(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--max-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "size=2" in out
        assert "size=3" not in out and "size=4" not in out

    def test_witness(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--witness", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "author" in out

    def test_streaming_index(self, document, tmp_path, capsys):
        store = tmp_path / "stream.idx"
        assert main(["index", str(document), str(store),
                     "--stream"]) == 0
        capsys.readouterr()
        assert main(["search", str(document), "(lei chen)",
                     "--index", str(store)]) == 0
        assert "result(s)" in capsys.readouterr().out


class TestExperiment:
    def test_experiment_runs(self, capsys):
        assert main(["experiment", "baseball", "--scale", "6"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Table 4" in out
        assert "MAP=" in out


class TestExplain:
    def test_explain_without_document(self, capsys):
        assert main(["explain", "(XML (John Smith))"]) == 0
        out = capsys.readouterr().out
        assert "reduced lattice" in out
        assert "term tree" in out

    def test_explain_with_document(self, document, capsys):
        assert main(["explain", "((Lei Chen) (Yi Guo))",
                     "--document", str(document)]) == 0
        assert "instance(s)" in capsys.readouterr().out


class TestLattice:
    def test_lattice_report(self, capsys):
        assert main(["lattice",
                     "((XML Keyword Search) (Paul Cooper) (Mary Davis))"
                     ]) == 0
        out = capsys.readouterr().out
        assert "877" in out   # full lattice of 7 keywords
        assert "9" in out     # reduced lattice


class TestObservability:
    REQUIRED = ("postings_consumed", "stack_pushes", "lattice_nodes_built",
                "lattice_nodes_pruned", "results_emitted")

    def test_metrics_report_printed(self, document, capsys):
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "phases" in out
        for name in self.REQUIRED:
            assert name in out, name
        assert "stream-scan" in out

    def test_metrics_json_dump(self, document, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(["search", str(document), "((Lei Chen) (Yi Guo))",
                     "--metrics-json", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        for name in self.REQUIRED:
            assert name in snapshot["counters"], name
        assert snapshot["counters"]["results_emitted"] > 0
        for phase in ("index-load", "parse", "lattice-build",
                      "stream-scan", "rank"):
            assert phase in snapshot["phases"], phase

    def test_metrics_json_with_no_results_keeps_catalogue(
            self, document, tmp_path, capsys):
        target = tmp_path / "empty.json"
        assert main(["search", str(document), "(a (b c))",
                     "--metrics-json", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        for name in self.REQUIRED:
            assert name in snapshot["counters"], name
        assert snapshot["counters"]["results_emitted"] == 0

    def test_metrics_with_baseline(self, document, capsys):
        # elca goes through KeywordMatches, so the baseline counters
        # appear; slca (definition-first) routes through the engine and
        # reports the engine catalogue instead.
        assert main(["search", str(document), "(lei chen)",
                     "--baseline", "elca", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "baseline_lists_loaded" in out

    def test_log_level_flag(self, document, capsys):
        assert main(["search", str(document), "(lei chen)",
                     "--log-level", "debug"]) == 0
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        assert any(getattr(h, "_repro_obs_handler", False)
                   for h in logger.handlers)
        # Re-leveling must adjust the existing handler, not stack one.
        assert main(["search", str(document), "(lei chen)",
                     "--log-level", "warning"]) == 0
        assert logger.level == logging.WARNING
        assert sum(1 for h in logger.handlers
                   if getattr(h, "_repro_obs_handler", False)) == 1

    def test_search_without_flags_leaves_metrics_off(self, document,
                                                     capsys):
        from repro.obs import NULL_METRICS, get_metrics
        assert main(["search", str(document), "(lei chen)"]) == 0
        assert get_metrics() is NULL_METRICS


class TestErrors:
    def test_bad_query_reports_error(self, document, capsys):
        assert main(["search", str(document), "((a))"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_xml_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>")
        assert main(["stats", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
