"""Tests for XML ↔ DataTree conversion, including round trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tree.builder import build_tree
from repro.xmlio.loader import load_tree
from repro.xmlio.writer import dump_tree

SAMPLE = """<?xml version="1.0"?>
<bib>
  <article id="a7">
    <title>Keyword search in XML data</title>
    <author>Paul Cooper</author>
    <author>Mary Davis</author>
  </article>
</bib>
"""


class TestLoader:
    def test_elements_become_nodes(self):
        tree = load_tree(SAMPLE)
        assert tree.root.label == "bib"
        article = tree.node((0,))
        assert article.label == "article"

    def test_attributes_become_children(self):
        tree = load_tree(SAMPLE)
        id_node = tree.node((0, 0))
        assert id_node.label == "id"
        assert id_node.value == "a7"

    def test_text_becomes_value(self):
        tree = load_tree(SAMPLE)
        assert tree.node((0, 1)).value == "Keyword search in XML data"

    def test_mixed_content_joined(self):
        tree = load_tree("<a>one<b/>two   three</a>")
        assert tree.root.value == "one two three"

    def test_cdata_merged_into_value(self):
        tree = load_tree("<a><![CDATA[x < y]]></a>")
        assert tree.root.value == "x < y"

    def test_comments_ignored(self):
        tree = load_tree("<a><!-- hidden -->text</a>")
        assert tree.root.value == "text"
        assert len(tree) == 1


class TestWriter:
    def test_dump_produces_wellformed_xml(self, figure1_tree):
        text = dump_tree(figure1_tree)
        assert text.startswith('<?xml version="1.0"')
        reloaded = load_tree(text)
        assert len(reloaded) == len(figure1_tree)

    def test_escapes_special_characters(self):
        tree = build_tree(("a", "x < y & z"))
        text = dump_tree(tree)
        assert "&lt;" in text and "&amp;" in text
        assert load_tree(text).root.value == "x < y & z"


def _trees(draw):
    labels = st.sampled_from(["a", "b", "c", "item", "name"])
    words = st.sampled_from(["alpha", "beta", "x1", "kappa"])

    def spec(depth):
        children = st.lists(spec(depth - 1), max_size=3) if depth else \
            st.just([])
        value = st.one_of(
            st.none(),
            st.lists(words, min_size=1, max_size=4).map(" ".join))
        return st.tuples(labels, value, children)

    return draw(spec(3))


@given(st.data())
def test_tree_xml_roundtrip(data):
    spec = _trees(data.draw)
    tree = build_tree(spec)
    reloaded = load_tree(dump_tree(tree))
    assert len(reloaded) == len(tree)
    for original, copy in zip(tree, reloaded):
        assert original.code == copy.code
        assert original.label == copy.label
        assert original.value == copy.value
