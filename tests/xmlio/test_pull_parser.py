"""Tests for the from-scratch XML pull parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlio.pull_parser import PullParser
from repro.xmlio.tokens import (Characters, Comment, EndElement,
                                ProcessingInstruction, StartElement)


def events(text, **kwargs):
    return list(PullParser(text, **kwargs))


class TestBasics:
    def test_single_element(self):
        assert events("<a/>") == [
            StartElement("a", line=1, column=1),
            EndElement("a", line=1, column=1),
        ]

    def test_nested_elements_and_text(self):
        parsed = events("<a><b>hi</b></a>")
        kinds = [type(event).__name__ for event in parsed]
        assert kinds == ["StartElement", "StartElement", "Characters",
                         "EndElement", "EndElement"]
        assert parsed[2].text == "hi"

    def test_attributes(self):
        (start, _end) = events('<a x="1" y=\'two\'/>')
        assert start.attributes == (("x", "1"), ("y", "two"))
        assert start.get("x") == "1"
        assert start.get("missing", "d") == "d"

    def test_attribute_entities_decoded(self):
        (start, _end) = events('<a t="a&amp;b"/>')
        assert start.get("t") == "a&b"

    def test_text_entities_decoded(self):
        parsed = events("<a>1 &lt; 2</a>")
        assert parsed[1].text == "1 < 2"

    def test_whitespace_text_skipped_by_default(self):
        parsed = events("<a>\n  <b/>\n</a>")
        assert all(not isinstance(event, Characters) for event in parsed)

    def test_whitespace_text_kept_on_request(self):
        parsed = events("<a> <b/> </a>", keep_whitespace_text=True)
        assert sum(isinstance(event, Characters) for event in parsed) == 2


class TestSpecialConstructs:
    def test_comment(self):
        parsed = events("<a><!-- note --></a>")
        assert Comment(" note ", line=1, column=4) in parsed

    def test_cdata(self):
        parsed = events("<a><![CDATA[<raw> & unescaped]]></a>")
        assert parsed[1] == Characters("<raw> & unescaped",
                                       line=1, column=4)

    def test_processing_instruction_and_declaration(self):
        parsed = events('<?xml version="1.0"?><a/>')
        assert isinstance(parsed[0], ProcessingInstruction)
        assert parsed[0].target == "xml"
        assert parsed[0].data == 'version="1.0"'

    def test_doctype_skipped(self):
        parsed = events('<!DOCTYPE bib SYSTEM "bib.dtd" [ <!ENTITY x "y"> '
                        ']><a/>')
        assert isinstance(parsed[0], StartElement)

    def test_comment_before_root(self):
        parsed = events("<!-- head --><a/>")
        assert isinstance(parsed[0], Comment)


class TestWellFormedness:
    @pytest.mark.parametrize("bad", [
        "<a>",                       # unclosed element
        "<a></b>",                   # mismatched tags
        "</a>",                      # end tag with no start
        "<a/><b/>",                  # two roots
        "text<a/>",                  # data before the root
        "<a x='1' x='2'/>",          # duplicate attribute
        "<a x=1/>",                  # unquoted attribute
        "<a x/>",                    # attribute without value
        "<a x='<'/>",                # raw < in attribute
        "<a><!-- -- --></a>",        # double hyphen in comment
        "<a><![CDATA[oops</a>",      # unterminated CDATA
        "<?pi <a/>",                 # unterminated PI
        "<a>]]></a>",                # bare CDATA terminator in text
        "",                          # no root
        "<a b='1'",                  # truncated tag
    ])
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            events(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            events("<a>\n</b>")
        assert excinfo.value.line == 2

    def test_streams_without_materializing(self):
        # The parser is a generator: the first event arrives without
        # parsing the rest of the (broken) document.
        stream = PullParser("<a><b></mismatch>").events()
        assert next(stream) == StartElement("a", line=1, column=1)
