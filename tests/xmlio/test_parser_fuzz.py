"""Fuzz tests: the XML parser must reject garbage, never crash.

Any input either parses into events or raises
:class:`~repro.errors.XMLSyntaxError` — no other exception type may
escape, whatever bytes arrive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlio.pull_parser import PullParser

# Alphabets chosen to hit the markup machinery hard.
markup_soup = st.text(
    alphabet="<>&;/=\"'ab \n!?-[]CDATA", max_size=120)
arbitrary_text = st.text(max_size=120)


@given(markup_soup)
@settings(max_examples=300)
def test_markup_soup_never_crashes(text):
    try:
        list(PullParser(text))
    except XMLSyntaxError:
        pass


@given(arbitrary_text)
@settings(max_examples=200)
def test_arbitrary_text_never_crashes(text):
    try:
        list(PullParser(text))
    except XMLSyntaxError:
        pass


@given(st.text(alphabet="ab<>/", min_size=1, max_size=40))
@settings(max_examples=200)
def test_wrapped_soup_in_valid_root(payload):
    """Garbage inside a well-formed root either parses as text/markup or
    is rejected cleanly; accepted documents must balance their tags."""
    document = f"<root>{payload}</root>"
    try:
        events = list(PullParser(document))
    except XMLSyntaxError:
        return
    depth = 0
    for event in events:
        name = type(event).__name__
        if name == "StartElement":
            depth += 1
        elif name == "EndElement":
            depth -= 1
            assert depth >= 0
    assert depth == 0
