"""Tests for XML entity escaping/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import (decode_entity, escape_attribute,
                                escape_text, unescape)


class TestEscape:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    @given(st.text(max_size=100))
    def test_escape_unescape_roundtrip(self, text):
        assert unescape(escape_text(text)) == text


class TestDecode:
    def test_named_entities(self):
        assert unescape("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"

    def test_decimal_reference(self):
        assert decode_entity("#65") == "A"

    def test_hex_reference(self):
        assert decode_entity("#x41") == "A"
        assert decode_entity("#X41") == "A"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            unescape("&nope;")

    def test_bad_charref_raises(self):
        with pytest.raises(XMLSyntaxError):
            decode_entity("#xzz")
        with pytest.raises(XMLSyntaxError):
            decode_entity("#999999999999")

    def test_unterminated_reference_raises(self):
        with pytest.raises(XMLSyntaxError):
            unescape("a &amp b")

    def test_no_ampersand_fast_path(self):
        assert unescape("plain text") == "plain text"
