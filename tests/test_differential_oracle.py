"""Differential testing: engine == lattice machine == brute-force oracle.

The oracle (:mod:`tests.oracle`) re-implements Def. 1-3 by literal
enumeration, sharing no evaluation machinery with the production paths.
On random small trees and random cohesive queries, all three must agree
on the result set *and* on every LCA's size; any divergence pinpoints a
semantics bug in exactly one layer.

The kernel-differential half locks the flat evaluation kernel
(:mod:`repro.core.kernel`) to the same contract: byte-for-byte equal to
the object engine — codes, sizes, per-term breakdowns and every tie —
on materialized lists, through the session under every
algorithm × rank-mode combination, and straight off CKSIDX2 stores,
including DAG-deduped ones whose posting blocks fan back out on decode.

This suite is also wired as a dedicated CI matrix entry (see
.github/workflows/ci.yml, which runs it under both ``REPRO_KERNEL``
settings) so it cannot be skipped silently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate, evaluate_compiled
from repro.core.kernel import evaluate_compiled_flat, evaluate_flat_on_store
from repro.core.lattice_machine import lattice_machine_evaluate
from repro.core.semantics import brute_force_evaluate
from repro.core.signatures import compile_query
from repro.index.inverted import InvertedIndex
from repro.index.store_v2 import (load_index_v2, save_index_v2,
                                  save_index_v2_dedup)
from repro.runtime import ALGORITHMS, RANK_MODES, SearchSession

from tests.core.test_engine_oracle import queries, trees
from tests.oracle import oracle_search


@given(trees(), queries())
@settings(max_examples=120)
def test_engine_matches_oracle(tree, query):
    index = InvertedIndex.from_tree(tree)
    fast = [(r.code, r.size) for r in evaluate(query, index)]
    assert fast == oracle_search(tree, query)


@given(trees(), queries())
@settings(max_examples=60)
def test_lattice_machine_matches_oracle(tree, query):
    index = InvertedIndex.from_tree(tree)
    machine = [(r.code, r.size)
               for r in lattice_machine_evaluate(query, index)]
    assert machine == oracle_search(tree, query)


@given(trees(), queries())
@settings(max_examples=60)
def test_all_four_implementations_agree(tree, query):
    """engine == machine == repro.core.semantics == tests.oracle.

    Two independent oracles guard each other: repro.core.semantics is
    the package's own reference implementation, tests.oracle re-derives
    everything (including the Dewey algebra) from the paper's text.
    """
    index = InvertedIndex.from_tree(tree)
    expected = oracle_search(tree, query)
    engine = [(r.code, r.size) for r in evaluate(query, index)]
    machine = [(r.code, r.size)
               for r in lattice_machine_evaluate(query, index)]
    semantics = [(r.code, r.size)
                 for r in brute_force_evaluate(query, index)]
    assert engine == expected
    assert machine == expected
    assert semantics == expected


@given(trees(), queries())
@settings(max_examples=40)
def test_lazy_store_roundtrip_preserves_results(tmp_path_factory, tree,
                                                query):
    """Searching a CKSIDX2-persisted index lazily must not change the
    answer: the full pipeline (save → mmap open → lazy decode → session
    search) agrees with the oracle."""
    index = InvertedIndex.from_tree(tree)
    path = tmp_path_factory.mktemp("oracle-store") / "t.idx2"
    save_index_v2(index, path)
    with load_index_v2(path) as lazy:
        session = SearchSession(lazy)
        lazy_results = [(r.code, r.size) for r in session.search(query)]
    assert lazy_results == oracle_search(tree, query)


# -- the kernel-differential suite ------------------------------------------

@given(trees(), queries())
@settings(max_examples=120)
def test_flat_kernel_byte_identical_to_engine_and_oracle(tree, query):
    """Flat kernel == object engine == oracle, full Result equality.

    Result rows carry code, size and the per-term breakdown vector;
    comparing whole rows (not just (code, size)) pins every tie-break
    and every breakdown the kernel interns.
    """
    index = InvertedIndex.from_tree(tree)
    compiled = compile_query(query, index.tokenizer.normalize)
    lists = {kw: index.postings(kw) for kw in compiled.atoms}
    object_results = evaluate_compiled(compiled, lists)
    flat_results = evaluate_compiled_flat(compiled, lists)
    assert flat_results == object_results
    assert [(r.code, r.size) for r in flat_results] == \
        oracle_search(tree, query)
    # A size budget prunes identically on both sides.
    if object_results:
        budget = object_results[len(object_results) // 2].size
        assert evaluate_compiled_flat(compiled, lists,
                                      size_budget=budget) == \
            evaluate_compiled(compiled, lists, size_budget=budget)


@given(trees(), queries())
@settings(max_examples=30, deadline=None)
def test_kernel_parity_across_algorithms_and_rank_modes(tree, query):
    """kernel='flat' vs 'object' through the session facade.

    Every algorithm (the non-cohesive ones ignore the knob — that
    indifference is part of the contract) and, for the cohesive
    engine, every rank mode and the top-k loop.
    """
    index = InvertedIndex.from_tree(tree)
    session = SearchSession(index)
    for algorithm in ALGORITHMS:
        assert session.search(query, algorithm=algorithm,
                              kernel="flat") == \
            session.search(query, algorithm=algorithm, kernel="object")
    for rank in RANK_MODES:
        assert session.search(query, rank=rank, kernel="flat") == \
            session.search(query, rank=rank, kernel="object")
    assert session.search(query, top_k=2, kernel="flat") == \
        session.search(query, top_k=2, kernel="object")


@given(trees(), queries())
@settings(max_examples=40)
def test_dedup_store_evaluates_byte_identically(tmp_path_factory, tree,
                                                query):
    """The DAG-deduped store changes bytes on disk, never answers.

    Both read paths are pinned: the lazy mapping (session search over
    the expanded postings) and the kernel's zero-copy block-view
    decode (:func:`evaluate_flat_on_store`), each against the object
    engine on the plain index and against the oracle.
    """
    index = InvertedIndex.from_tree(tree)
    expected = oracle_search(tree, query)
    path = tmp_path_factory.mktemp("dedup-store") / "t.idx2"
    save_index_v2_dedup(index, path)
    compiled = compile_query(query, index.tokenizer.normalize)
    lists = {kw: index.postings(kw) for kw in compiled.atoms}
    object_results = evaluate_compiled(compiled, lists)
    with load_index_v2(path) as lazy:
        for kw in index.raw_postings():
            assert lazy.postings(kw) == index.postings(kw)
        session_results = SearchSession(lazy).search(query)
        assert evaluate_flat_on_store(compiled, lazy) == object_results
    assert session_results == object_results
    assert [(r.code, r.size) for r in session_results] == expected
