"""Differential testing: engine == lattice machine == brute-force oracle.

The oracle (:mod:`tests.oracle`) re-implements Def. 1-3 by literal
enumeration, sharing no evaluation machinery with the production paths.
On random small trees and random cohesive queries, all three must agree
on the result set *and* on every LCA's size; any divergence pinpoints a
semantics bug in exactly one layer.

This suite is also wired as a dedicated CI matrix entry (see
.github/workflows/ci.yml) so it cannot be skipped silently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.core.lattice_machine import lattice_machine_evaluate
from repro.core.semantics import brute_force_evaluate
from repro.index.inverted import InvertedIndex
from repro.index.store_v2 import load_index_v2, save_index_v2
from repro.runtime import SearchSession

from tests.core.test_engine_oracle import queries, trees
from tests.oracle import oracle_search


@given(trees(), queries())
@settings(max_examples=120)
def test_engine_matches_oracle(tree, query):
    index = InvertedIndex.from_tree(tree)
    fast = [(r.code, r.size) for r in evaluate(query, index)]
    assert fast == oracle_search(tree, query)


@given(trees(), queries())
@settings(max_examples=60)
def test_lattice_machine_matches_oracle(tree, query):
    index = InvertedIndex.from_tree(tree)
    machine = [(r.code, r.size)
               for r in lattice_machine_evaluate(query, index)]
    assert machine == oracle_search(tree, query)


@given(trees(), queries())
@settings(max_examples=60)
def test_all_four_implementations_agree(tree, query):
    """engine == machine == repro.core.semantics == tests.oracle.

    Two independent oracles guard each other: repro.core.semantics is
    the package's own reference implementation, tests.oracle re-derives
    everything (including the Dewey algebra) from the paper's text.
    """
    index = InvertedIndex.from_tree(tree)
    expected = oracle_search(tree, query)
    engine = [(r.code, r.size) for r in evaluate(query, index)]
    machine = [(r.code, r.size)
               for r in lattice_machine_evaluate(query, index)]
    semantics = [(r.code, r.size)
                 for r in brute_force_evaluate(query, index)]
    assert engine == expected
    assert machine == expected
    assert semantics == expected


@given(trees(), queries())
@settings(max_examples=40)
def test_lazy_store_roundtrip_preserves_results(tmp_path_factory, tree,
                                                query):
    """Searching a CKSIDX2-persisted index lazily must not change the
    answer: the full pipeline (save → mmap open → lazy decode → session
    search) agrees with the oracle."""
    index = InvertedIndex.from_tree(tree)
    path = tmp_path_factory.mktemp("oracle-store") / "t.idx2"
    save_index_v2(index, path)
    with load_index_v2(path) as lazy:
        session = SearchSession(lazy)
        lazy_results = [(r.code, r.size) for r in session.search(query)]
    assert lazy_results == oracle_search(tree, query)
