"""Tests for the ranking-scheme comparison extension."""

import pytest

from repro.datasets import generate_dblp, generate_psd
from repro.evaluation.experiments import ranking_comparison
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module", params=[generate_dblp, generate_psd],
                ids=["dblp", "psd"])
def dataset_and_index(request):
    dataset = request.param(scale=50)
    return dataset, InvertedIndex.from_tree(dataset.tree)


def test_all_schemes_scored_per_query(dataset_and_index):
    dataset, index = dataset_and_index
    table = ranking_comparison(dataset, index)
    assert set(table) == set(dataset.queries)
    for row in table.values():
        assert set(row) == {"size", "vector", "skyline"}
        for value in row.values():
            assert 0.0 <= value <= 1.0


def test_schemes_rank_relevant_high(dataset_and_index):
    dataset, index = dataset_and_index
    table = ranking_comparison(dataset, index)
    for scheme in ("size", "vector", "skyline"):
        average = sum(row[scheme] for row in table.values()) / len(table)
        assert average >= 0.8, scheme
