"""Integration tests for the experiment drivers against generated data.

These assert the *shape* of the paper's results — the claims its
evaluation section makes — on our generated datasets:

* Table 3: CohesiveLCA returns fewer results than the flat semantics,
  and SLCA ⊆ ELCA;
* Fig. 4 / Table 4: top-1-size CohesiveLCA has perfect precision; full
  CohesiveLCA has perfect recall; the flat baselines trail both;
* Table 5: MAP and NDCG of the cohesive-term ranking are high.
"""

import pytest

from repro.datasets import generate_baseball, generate_dblp
from repro.evaluation.experiments import (average_effectiveness,
                                          dataset_ranking_quality,
                                          effectiveness_table,
                                          ranking_quality_table,
                                          result_count_table,
                                          time_cohesive, total_instances)
from repro.evaluation.relevance import Assessor
from repro.core.parser import parse_query
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def dblp():
    dataset = generate_dblp(scale=80)
    return dataset, InvertedIndex.from_tree(dataset.tree)


class TestResultCounts:
    def test_table3_shape(self, dblp):
        dataset, index = dblp
        rows = result_count_table(dataset, index)
        assert len(rows) == 5
        for row in rows:
            assert row["CohesiveLCA"] <= row["SLCA"], row
            assert row["SLCA"] <= row["ELCA"], row
            assert row["CohesiveLCA"] >= 1


class TestEffectiveness:
    def test_fig4_and_table4_shape(self, dblp):
        dataset, index = dblp
        rows = effectiveness_table(dataset, index)
        assert len(rows) == 5 * 6  # queries x semantics
        averages = average_effectiveness(rows)
        top = averages["top-1-size CohesiveLCA"]
        full = averages["CohesiveLCA"]
        assert top["precision"] == pytest.approx(1.0)
        assert full["recall"] == pytest.approx(1.0)
        for baseline in ("SLCA", "ELCA", "VLCA", "MLCA"):
            assert averages[baseline]["precision"] < top["precision"]
            assert averages[baseline]["f_measure"] < top["f_measure"]

    def test_rows_carry_identifiers(self, dblp):
        dataset, index = dblp
        rows = effectiveness_table(dataset, index)
        assert {row.dataset for row in rows} == {"dblp"}
        assert {row.query_id for row in rows} == set(dataset.queries)


class TestRankingQuality:
    def test_table5_shape(self, dblp):
        dataset, index = dblp
        table = ranking_quality_table(dataset, index)
        assert set(table) == set(dataset.queries)
        for row in table.values():
            assert 0.0 <= row["map"] <= 1.0
            assert 0.0 <= row["ndcg"] <= 1.0
        summary = dataset_ranking_quality(dataset, index)
        assert summary["ndcg"] >= 0.9
        assert summary["map"] >= 0.9

    def test_baseball_statistical_queries(self):
        dataset = generate_baseball(scale=10)
        index = InvertedIndex.from_tree(dataset.tree)
        summary = dataset_ranking_quality(dataset, index)
        assert summary["ndcg"] >= 0.9


class TestAssessor:
    def test_grades_and_relevance(self, dblp):
        dataset, _ = dblp
        assessor = Assessor(dataset, "QD1")
        codes = sorted(dataset.relevant_codes("QD1"))
        assert assessor.is_relevant(codes[0])
        assert assessor.grade(codes[0]) >= 1
        assert assessor.grade(("nope",)) == 0
        assert assessor.graded_ranking(codes) == \
            [assessor.grade(code) for code in codes]

    def test_unknown_query_raises(self, dblp):
        dataset, _ = dblp
        with pytest.raises(KeyError):
            Assessor(dataset, "QX9")


class TestEfficiencyHelpers:
    def test_total_instances_respects_limit(self, dblp):
        _, index = dblp
        query = parse_query("(title author)")
        unlimited = total_instances(query, index, None)
        limited = total_instances(query, index, 5)
        assert limited == 10
        assert unlimited > limited

    def test_time_cohesive_returns_seconds(self, dblp):
        _, index = dblp
        query = parse_query("(title author)")
        assert time_cohesive(query, index, 50) >= 0.0
