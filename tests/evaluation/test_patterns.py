"""Tests for pattern-based relevance assessment."""

import pytest

from repro.evaluation.patterns import (PatternAssessor, PatternRule,
                                       _path_matches)


class TestPathMatching:
    def test_suffix_match_default(self):
        assert _path_matches("article", "bib/article")
        assert _path_matches("bib/article", "bib/article")
        assert _path_matches("//article", "bib/article")
        assert not _path_matches("article", "bib/article/title")

    def test_anchored_match(self):
        assert _path_matches("/bib/article", "bib/article")
        assert not _path_matches("/article", "bib/article")

    def test_wildcard(self):
        assert _path_matches("bib/*", "bib/article")
        assert _path_matches("*/article", "bib/article")
        assert not _path_matches("*/*", "bib")

    def test_longer_pattern_than_path(self):
        assert not _path_matches("a/b/c", "b/c")


class TestRules:
    def test_requires_labels_in_subtree(self, figure1_tree):
        rule = PatternRule("article", grade=3, requires=("references",))
        # Only the third article has a references child.
        assert not rule.matches(figure1_tree, (0,))
        assert rule.matches(figure1_tree, (2,))

    def test_missing_node_is_no_match(self, figure1_tree):
        rule = PatternRule("article", grade=1)
        assert not rule.matches(figure1_tree, (9, 9))


class TestAssessor:
    @pytest.fixture
    def assessor(self, figure1_tree):
        return (PatternAssessor(figure1_tree)
                .add_rule("bib/article", 3)
                .add_rule("references/article", 2)
                .add_rule("bib", 1))

    def test_max_grade_wins(self, assessor):
        # references/article also suffix-matches 'article' rules? The
        # bib/article rule requires the path to end with bib/article.
        assert assessor.grade((2, 3, 0)) == 2
        assert assessor.grade((0,)) == 3
        assert assessor.grade(()) == 1

    def test_ungraded_is_zero(self, assessor):
        assert assessor.grade((0, 0)) == 0
        assert not assessor.is_relevant((0, 0))

    def test_relevant_among(self, assessor):
        codes = [(0,), (0, 0), (2, 3, 0)]
        assert assessor.relevant_among(codes) == {(0,), (2, 3, 0)}
        assert assessor.relevant_among(codes, min_grade=3) == {(0,)}

    def test_grades_for(self, assessor):
        grades = assessor.grades_for([(0,), (0, 0)])
        assert grades == {(0,): 3, (0, 0): 0}

    def test_usable_with_metrics(self, figure1_tree, figure1_index,
                                 assessor):
        from repro.core.engine import evaluate
        from repro.evaluation.metrics import ndcg
        from tests.conftest import Q1
        ranking = [r.code for r in evaluate(Q1, figure1_index)]
        grades = assessor.grades_for(ranking)
        assert 0.0 <= ndcg(ranking, grades) <= 1.0
