"""Tests for the report formatting helpers."""

from repro.evaluation.reporting import ascii_chart, format_mapping, \
    format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        # All rows have equal width per column separators.
        assert "longer" in lines[4]

    def test_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text


class TestFormatMapping:
    def test_percent_scaling(self):
        text = format_mapping({"row": {"precision": 0.5}})
        assert "50.0" in text

    def test_empty(self):
        assert format_mapping({}, title="t") == "t"


class TestAsciiChart:
    def test_bars_scale_to_peak(self):
        text = ascii_chart({"s": [(1, 10.0), (2, 20.0)]}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_multiple_series_share_scale(self):
        text = ascii_chart({
            "fast": [(1, 1.0)],
            "slow": [(1, 100.0)],
        }, width=20)
        fast_line = next(line for line in text.splitlines()
                         if line.lstrip().startswith("fast"))
        slow_line = next(line for line in text.splitlines()
                         if line.lstrip().startswith("slow"))
        assert slow_line.count("#") == 20
        assert fast_line.count("#") == 1  # minimum visible bar

    def test_zero_values(self):
        text = ascii_chart({"s": [(1, 0.0)]})
        assert "|" in text

    def test_title(self):
        assert ascii_chart({}, title="hello").splitlines()[0] == "hello"
