"""Tests for the IR metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (average_precision, dcg, f_measure,
                                      ndcg, precision, recall)


class TestPrecisionRecall:
    def test_basic(self):
        returned = ["a", "b", "c", "d"]
        relevant = {"a", "c", "x"}
        assert precision(returned, relevant) == 0.5
        assert recall(returned, relevant) == pytest.approx(2 / 3)

    def test_empty_returned(self):
        assert precision([], {"a"}) == 1.0
        assert recall([], {"a"}) == 0.0

    def test_no_relevant(self):
        assert recall(["a"], set()) == 1.0

    def test_f_measure_harmonic(self):
        returned = ["a", "b"]
        relevant = {"a", "c"}
        p, r = 0.5, 0.5
        assert f_measure(returned, relevant) == \
            pytest.approx(2 * p * r / (p + r))

    def test_f_measure_zero(self):
        assert f_measure(["a"], {"b"}) == 0.0

    ranked = st.lists(st.sampled_from("abcdef"), max_size=6, unique=True)
    relevant = st.sets(st.sampled_from("abcdef"), max_size=6)

    @given(ranked, relevant)
    def test_bounds(self, returned, relevant):
        for metric in (precision, recall, f_measure, average_precision):
            assert 0.0 <= metric(returned, relevant) <= 1.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_relevant_late(self):
        # relevant at positions 2 and 4: (1/2 + 2/4) / 2.
        assert average_precision(["x", "a", "y", "b"], {"a", "b"}) == \
            pytest.approx(0.5)

    def test_missing_relevant_contributes_zero(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_no_relevant(self):
        assert average_precision(["a"], set()) == 1.0


class TestDCG:
    def test_dcg_formula(self):
        grades = [3, 2, 0, 1]
        expected = 3 / math.log2(2) + 2 / math.log2(3) + 0 + \
            1 / math.log2(5)
        assert dcg(grades) == pytest.approx(expected)

    def test_ndcg_perfect(self):
        grades = {"a": 3, "b": 2, "c": 1}
        assert ndcg(["a", "b", "c"], grades) == pytest.approx(1.0)

    def test_ndcg_penalizes_bad_order(self):
        grades = {"a": 3, "b": 0}
        assert ndcg(["b", "a"], grades) < 1.0

    def test_ndcg_penalizes_missing(self):
        grades = {"a": 3, "b": 3}
        assert ndcg(["a"], grades) == pytest.approx(0.5, abs=0.2)

    def test_ndcg_no_grades(self):
        assert ndcg(["a"], {}) == 1.0

    @given(st.permutations(["a", "b", "c", "d"]))
    def test_ndcg_bounds(self, ranking):
        grades = {"a": 3, "b": 2, "c": 1}
        assert 0.0 <= ndcg(ranking, grades) <= 1.0
