"""Tests for the programmatic efficiency sweep runners."""

import pytest

from repro.core.lattice import bell_number
from repro.datasets import generate_dblp
from repro.evaluation.efficiency import (algorithm_comparison,
                                         cardinality_sweep,
                                         instance_scalability_sweep,
                                         keyword_count_comparison,
                                         largest_sublattice_curve)
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def index():
    return InvertedIndex.from_tree(generate_dblp(scale=250).tree)


class TestInstanceSweep:
    def test_points_shape(self, index):
        points = instance_scalability_sweep(
            index, "dblp", 6, limits=(20, 40),
            patterns=["(xx(xx)(xx))"])
        assert len(points) == 2
        assert points[0].label == "dblp"
        assert points[0].keywords == 6
        assert points[0].instances <= points[1].instances
        assert all(p.seconds >= 0 for p in points)

    def test_deterministic(self, index):
        first = instance_scalability_sweep(index, "d", 6, limits=(20,),
                                           patterns=["((xxx)(xxx))"],
                                           seed=3)
        second = instance_scalability_sweep(index, "d", 6, limits=(20,),
                                            patterns=["((xxx)(xxx))"],
                                            seed=3)
        assert [p.instances for p in first] == \
            [p.instances for p in second]


class TestCardinalitySweep:
    def test_cardinalities_covered(self, index):
        points = cardinality_sweep(index, 6, cardinalities=(2, 3),
                                   total_instance_target=120,
                                   queries_per_point=1)
        assert [p.parameter for p in points] == [2, 3]

    def test_sublattice_curve(self):
        assert largest_sublattice_curve((3, 4, 5)) == \
            [bell_number(3), bell_number(4), bell_number(5)]


class TestComparisons:
    def test_fig7_runner(self, index):
        points = keyword_count_comparison(index, keyword_counts=(2, 3),
                                          list_limit=30,
                                          queries_per_point=1)
        labels = {p.label for p in points}
        assert labels == {"CohesiveLCA", "LCAsz"}
        assert len(points) == 4

    def test_fig8_runner(self, index):
        points = algorithm_comparison(index, keywords_count=4,
                                      limits=(20,), queries_per_point=1)
        labels = [p.label for p in points]
        assert labels == ["CohesiveLCA", "LCAsz", "SAOne"]
        assert all(p.milliseconds == p.seconds * 1000 for p in points)
