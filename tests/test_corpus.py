"""Tests for multi-document corpora."""

import pytest

from repro.corpus import Corpus

DOC_A = """<bib>
  <article>
    <title>xml keyword search</title>
    <author>john smith</author>
  </article>
</bib>"""

DOC_B = """<bib>
  <article>
    <title>graph databases</title>
    <author>george brown</author>
  </article>
  <article>
    <title>xml views</title>
    <author>john brown</author>
  </article>
</bib>"""


@pytest.fixture
def corpus():
    corpus = Corpus()
    corpus.add_document("a.xml", DOC_A)
    corpus.add_document("b.xml", DOC_B)
    return corpus


class TestBuilding:
    def test_document_ids_sequential(self):
        corpus = Corpus()
        assert corpus.add_document("x", DOC_A) == 0
        assert corpus.add_document("y", DOC_B) == 1
        assert len(corpus) == 2
        assert corpus.documents == ["x", "y"]

    def test_add_path(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(DOC_A)
        corpus = Corpus()
        corpus.add_paths([target])
        assert corpus.documents == ["doc.xml"]

    def test_documents_share_keyword_space(self, corpus):
        # 'xml' appears in both documents: postings span both subtrees.
        codes = [p.code for p in corpus.index.postings("xml")]
        assert any(code[0] == 0 for code in codes)
        assert any(code[0] == 1 for code in codes)


class TestPersistence:
    def test_save_load_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "collection.ckscorpus"
        written = corpus.save(path)
        assert written == path.stat().st_size
        reloaded = Corpus.load(path)
        assert reloaded.documents == corpus.documents
        assert reloaded.index.raw_postings() == \
            corpus.index.raw_postings()

    def test_reloaded_corpus_searches(self, corpus, tmp_path):
        path = tmp_path / "collection.ckscorpus"
        corpus.save(path)
        reloaded = Corpus.load(path)
        original = [(r.document, r.result.code, r.result.size)
                    for r in corpus.search("(xml (john smith))")]
        restored = [(r.document, r.result.code, r.result.size)
                    for r in reloaded.search("(xml (john smith))")]
        assert original == restored

    def test_bad_magic_rejected(self, tmp_path):
        from repro.errors import StoreFormatError
        path = tmp_path / "bad.ckscorpus"
        path.write_bytes(b"NOTACORP" + b"\x00" * 8)
        with pytest.raises(StoreFormatError):
            Corpus.load(path)

    def test_truncated_file_rejected(self, corpus, tmp_path):
        from repro.errors import StoreFormatError
        path = tmp_path / "trunc.ckscorpus"
        corpus.save(path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(StoreFormatError):
            Corpus.load(path)


class TestSearching:
    def test_results_attributed_to_documents(self, corpus):
        results = corpus.search("(xml (john smith))")
        assert results
        assert results[0].document == "a.xml"
        assert results[0].result.code[0] == 0

    def test_cohesiveness_across_corpus(self, corpus):
        # john brown in b.xml must not satisfy (john smith).
        names = {r.document for r in corpus.search("(xml (john smith))")}
        assert names == {"a.xml"}

    def test_cross_document_results_dropped_by_default(self, corpus):
        # 'smith' only in a.xml, 'george' only in b.xml: any combined
        # match would sit at the corpus root.
        assert corpus.search("(smith george)") == []
        kept = corpus.search("(smith george)", within_documents=False)
        assert [r.document for r in kept] == ["<corpus>"]

    def test_code_in_document(self, corpus):
        result = corpus.search("(george brown)")[0]
        assert result.document == "b.xml"
        assert result.code_in_document == result.result.code[1:]

    def test_document_name_lookup(self, corpus):
        assert corpus.document_name((1, 0)) == "b.xml"
        with pytest.raises(ValueError):
            corpus.document_name(())


class TestIncrementalSegments:
    """add_document appends a segment instead of re-merging the index."""

    def test_segment_count_grows_per_document(self):
        corpus = Corpus()
        assert corpus.segment_count == 0
        corpus.add_document("a.xml", DOC_A)
        assert corpus.segment_count == 1
        corpus.add_document("b.xml", DOC_B)
        assert corpus.segment_count == 2

    def test_compact_folds_segments(self, corpus):
        before = corpus.search("(xml john)")
        assert corpus.segment_count == 2
        corpus.compact()
        assert corpus.segment_count == 1
        assert _rows(corpus.search("(xml john)")) == _rows(before)

    def test_compact_then_add_appends_again(self, corpus):
        corpus.compact()
        corpus.add_document("c.xml", DOC_A)
        assert corpus.segment_count == 2
        names = {r.document for r in corpus.search("(xml john smith)")}
        assert names == {"a.xml", "c.xml"}

    def test_segmented_index_equals_flat_merge(self, corpus):
        """The lazy union must match an eager merged_with fold of the
        same per-document segments."""
        segments = list(corpus.index.segments)
        assert len(segments) == 2
        flat = segments[0]
        for segment in segments[1:]:
            flat = flat.merged_with(segment)
        assert corpus.index.raw_postings() == flat.raw_postings()

    def test_save_load_roundtrip_with_segments(self, corpus, tmp_path):
        path = tmp_path / "seg.ckscorpus"
        corpus.add_document("c.xml", DOC_A)
        corpus.save(path)
        reloaded = Corpus.load(path)
        assert reloaded.index.raw_postings() == \
            corpus.index.raw_postings()
        assert reloaded.segment_count == 1  # persisted form is flat


def _rows(results):
    return [(r.document, r.result) for r in results]


class TestParallelSearch:
    @pytest.fixture
    def big_corpus(self):
        corpus = Corpus()
        for step in range(5):
            corpus.add_document(f"doc{step}.xml", DOC_A if step % 2
                                else DOC_B)
        return corpus

    def test_parallel_equals_sequential(self, big_corpus):
        sequential = big_corpus.search("(xml john)")
        parallel = big_corpus.search("(xml john)", workers=3)
        assert _rows(parallel) == _rows(sequential)

    def test_parallel_with_list_limit(self, big_corpus):
        # The limit is applied to the corpus-wide list before sharding,
        # so the surviving instances are the same in both modes.
        sequential = big_corpus.search("(xml john)", list_limit=3)
        parallel = big_corpus.search("(xml john)", list_limit=3,
                                     workers=2)
        assert _rows(parallel) == _rows(sequential)

    def test_parallel_missing_keyword(self, big_corpus):
        assert big_corpus.search("(xml zzznothing)", workers=2) == []

    def test_more_workers_than_documents(self, corpus):
        sequential = corpus.search("(xml john)")
        parallel = corpus.search("(xml john)", workers=16)
        assert _rows(parallel) == _rows(sequential)

    def test_single_document_falls_back_sequential(self):
        corpus = Corpus()
        corpus.add_document("only.xml", DOC_A)
        assert _rows(corpus.search("(xml john)", workers=4)) == \
            _rows(corpus.search("(xml john)"))

    def test_workers_require_within_documents(self, corpus):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            corpus.search("(xml john)", workers=2,
                          within_documents=False)

    @pytest.mark.parametrize("kernel", ["flat", "object"])
    def test_parallel_respects_kernel(self, big_corpus, kernel):
        """Worker shards must honour the kernel option and stay
        byte-identical to the sequential path under it."""
        sequential = big_corpus.search("(xml john)", kernel=kernel)
        parallel = big_corpus.search("(xml john)", workers=3,
                                     kernel=kernel)
        assert _rows(parallel) == _rows(sequential)

    def test_parallel_kernels_agree(self, big_corpus):
        flat = big_corpus.search("(xml john)", workers=3, kernel="flat")
        object_ = big_corpus.search("(xml john)", workers=3,
                                    kernel="object")
        assert _rows(flat) == _rows(object_)

    def test_session_persists_and_invalidates(self, corpus):
        corpus.search("(xml john)")
        session = corpus.session
        assert session.cache_stats()["plan_cache"]["size"] > 0
        corpus.add_document("c.xml", DOC_A)
        assert corpus.session is session  # same long-lived session
        assert session.cache_stats()["plan_cache"]["size"] == 0
        # the new document is immediately visible
        names = {r.document for r in corpus.search("(xml john smith)")}
        assert names == {"a.xml", "c.xml"}
