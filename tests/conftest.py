"""Shared fixtures: the paper's Figure 1 tree and derived indexes."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.index.inverted import InvertedIndex
from repro.tree.builder import build_tree

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# A reconstruction of the paper's Figure 1 data tree D1.  The paper's
# stated facts hold on it: for the query
# Q1 = (XML keyword search (Paul Cooper) (Mary Davis)),
# the first article is a result of size 3, the third of size 6, and the
# second (where Mary slips inside the Paul/Cooper subtree) is excluded.
FIGURE1_SPEC = (
    "bib", None, [
        ("article", None, [                        # paper's node 2
            ("title", "Keyword search in XML data"),
            ("author", "Paul Cooper"),
            ("author", "Mary Davis"),
        ]),
        ("article", None, [                        # paper's node 6
            ("title", "XML Keyword search"),
            ("author", "Paul Simpson"),
            ("author", "Mary Cooper"),
            ("author", "Mark Davis"),
        ]),
        ("article", None, [                        # paper's node 11
            ("title", "XML retrieval in tree structured data"),
            ("author", "Paul Cooper"),
            ("author", "John Smith"),
            ("references", None, [
                ("article", None, [
                    ("title", "A novel keyword search algorithm"),
                    ("author", "Mary Davis"),
                    ("author", "George Williams"),
                ]),
            ]),
        ]),
    ])

Q1 = "(XML keyword search (Paul Cooper) (Mary Davis))"


@pytest.fixture(scope="session")
def figure1_tree():
    return build_tree(FIGURE1_SPEC)


@pytest.fixture(scope="session")
def figure1_index(figure1_tree):
    return InvertedIndex.from_tree(figure1_tree)
