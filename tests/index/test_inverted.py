"""Tests for the in-memory inverted index."""

import pytest

from repro.errors import IndexError_
from repro.index.inverted import InvertedIndex, Posting
from repro.tree.builder import build_tree


@pytest.fixture
def index():
    tree = build_tree(("bib", None, [
        ("article", None, [
            ("title", "xml xml search"),
            ("author", "paul cooper"),
        ]),
        ("article", None, [
            ("title", "xml data"),
        ]),
    ]))
    return InvertedIndex.from_tree(tree)


class TestConstruction:
    def test_postings_in_document_order(self, index):
        codes = [p.code for p in index.postings("xml")]
        assert codes == sorted(codes)
        assert codes == [(0, 0), (1, 0)]

    def test_frequency_counts_within_node(self, index):
        posting = index.postings("xml")[0]
        assert posting.frequency == 2

    def test_labels_are_indexed(self, index):
        # 'title' occurs as a label on two nodes.
        assert index.frequency("title") == 2

    def test_unknown_keyword_empty(self, index):
        assert index.postings("nothere") == ()
        assert "nothere" not in index
        assert index.frequency("nothere") == 0

    def test_len_counts_distinct_keywords(self, index):
        assert len(index) > 5
        assert set(index.keywords()) >= {"xml", "paul", "cooper", "title"}


class TestQueries:
    def test_limit_truncates(self, index):
        assert len(index.postings("xml", limit=1)) == 1

    def test_normalization_applied(self, index):
        assert [p.code for p in index.postings("XML")] == [(0, 0), (1, 0)]
        assert "Cooper" in index

    def test_node_count(self, index):
        assert index.node_count("xml", (0, 0)) == 2
        assert index.node_count("xml", (0, 1)) == 0

    def test_most_frequent(self, index):
        top = index.most_frequent(3)
        assert len(top) == 3
        assert index.frequency(top[0]) >= index.frequency(top[2])

    def test_require_raises_for_missing(self, index):
        index.require(["xml", "cooper"])
        with pytest.raises(IndexError_):
            index.require(["xml", "missing"])


class TestPostingOrdering:
    def test_manual_construction_sorts(self):
        index = InvertedIndex({
            "k": [Posting((1,)), Posting((0,)), Posting((0, 2))],
        })
        assert [p.code for p in index.postings("k")] == \
            [(0,), (0, 2), (1,)]
