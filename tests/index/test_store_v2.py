"""CKSIDX2 store: round trips, laziness, segments, corruption."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexError_, StoreFormatError
from repro.index.inverted import InvertedIndex, Posting
from repro.index.store import MAGIC as MAGIC_V1
from repro.index.store import load_index, save_index
from repro.index.store_v2 import (FOOTER_SIZE, MAGIC_V2, TAIL_MAGIC,
                                  LazyIndex, append_segment,
                                  append_tombstones, decode_dedup_block,
                                  decode_subtree_table, encode_dedup_block,
                                  encode_index_v2, encode_index_v2_dedup,
                                  encode_subtree_table,
                                  find_duplicate_subtrees, inspect_index,
                                  load_index_v2, merge_index, open_index,
                                  save_index_v2, save_index_v2_dedup)
from repro.obs import metrics_scope

posting_lists = st.dictionaries(
    st.text(alphabet="abcdefg", min_size=1, max_size=6),
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 30), max_size=6).map(tuple),
            st.integers(1, 5),
        ),
        max_size=10,
        unique_by=lambda pair: pair[0],
    ),
    max_size=6,
)


def _index(lists) -> InvertedIndex:
    return InvertedIndex({
        keyword: [Posting(code, freq) for code, freq in pairs]
        for keyword, pairs in lists.items()
    })


class TestRoundtrip:
    @given(lists=posting_lists)
    def test_v2_roundtrip(self, tmp_path_factory, lists):
        """load(save(idx)) == idx for the v2 format."""
        path = tmp_path_factory.mktemp("v2") / "index.idx2"
        index = _index(lists)
        written = save_index_v2(index, path)
        assert written == path.stat().st_size
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == index.raw_postings()

    @given(lists=posting_lists)
    def test_v1_roundtrip(self, tmp_path_factory, lists):
        """The same property holds for v1 (shared harness)."""
        path = tmp_path_factory.mktemp("v1") / "index.idx"
        index = _index(lists)
        save_index(index, path)
        assert load_index(path).raw_postings() == index.raw_postings()

    @given(lists=posting_lists)
    def test_v2_lazy_equals_v1_eager_keyword_by_keyword(
            self, tmp_path_factory, lists):
        directory = tmp_path_factory.mktemp("both")
        index = _index(lists)
        save_index(index, directory / "v1.idx")
        save_index_v2(index, directory / "v2.idx2")
        eager = load_index(directory / "v1.idx")
        with load_index_v2(directory / "v2.idx2") as lazy:
            assert set(lazy.keywords()) == set(eager.keywords())
            for keyword in eager.keywords():
                assert lazy.postings(keyword) == eager.postings(keyword)
                assert lazy.frequency(keyword) == eager.frequency(keyword)

    def test_roundtrip_from_tree(self, figure1_tree, tmp_path):
        index = InvertedIndex.from_tree(figure1_tree)
        path = tmp_path / "fig1.idx2"
        save_index_v2(index, path)
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == index.raw_postings()
            assert lazy.most_frequent(3) == index.most_frequent(3)


class TestLaziness:
    def test_open_decodes_nothing(self, figure1_index, tmp_path):
        path = tmp_path / "lazy.idx2"
        save_index_v2(figure1_index, path)
        with load_index_v2(path) as lazy:
            assert lazy.decoded_keywords() == frozenset()
            assert len(lazy) == len(figure1_index)  # directory only

    def test_access_decodes_exactly_one_block(self, figure1_index,
                                              tmp_path):
        path = tmp_path / "lazy.idx2"
        save_index_v2(figure1_index, path)
        with load_index_v2(path) as lazy:
            lazy.postings("xml")
            assert lazy.decoded_keywords() == {"xml"}

    def test_decode_counters(self, figure1_index, tmp_path):
        path = tmp_path / "metrics.idx2"
        save_index_v2(figure1_index, path)
        with metrics_scope() as metrics:
            with load_index_v2(path) as lazy:
                assert metrics.counter("index_open_v2") == 1
                assert metrics.counter("posting_decode_blocks") == 0
                lazy.postings("xml")
                assert metrics.counter("posting_decode_blocks") == 1
                assert metrics.counter("posting_decode_postings") > 0
                lazy.postings("xml")  # cached: no second decode
                assert metrics.counter("posting_decode_blocks") == 1
                assert metrics.counter("posting_decode_cache_hits") >= 1

    def test_frequency_needs_no_decode(self, figure1_index, tmp_path):
        path = tmp_path / "freq.idx2"
        save_index_v2(figure1_index, path)
        with load_index_v2(path) as lazy:
            assert lazy.frequency("xml") == figure1_index.frequency("xml")
            assert lazy.most_frequent(5) == figure1_index.most_frequent(5)
            assert lazy.decoded_keywords() == frozenset()

    def test_immutable_views(self, figure1_index, tmp_path):
        path = tmp_path / "imm.idx2"
        save_index_v2(figure1_index, path)
        with load_index_v2(path) as lazy:
            view = lazy.raw_postings()
            with pytest.raises(TypeError):
                view["xml"] = ()
            assert isinstance(lazy.postings("xml"), tuple)

    def test_read_api_parity(self, figure1_index, tmp_path):
        path = tmp_path / "api.idx2"
        save_index_v2(figure1_index, path)
        with load_index_v2(path) as lazy:
            assert "xml" in lazy and "notaword" not in lazy
            code = figure1_index.postings("xml")[0].code
            assert lazy.node_count("xml", code) == \
                figure1_index.node_count("xml", code)
            with pytest.raises(IndexError_):
                lazy.require(["xml", "notaword"])
            merged = lazy.merged_with(InvertedIndex(
                {"extra": [Posting((9,), 1)]}))
            assert "extra" in merged and "xml" in merged


class TestSegments:
    def test_append_merges_lists(self, tmp_path):
        path = tmp_path / "seg.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), path)
        append_segment(path, InvertedIndex({"k": [Posting((1,), 2)],
                                            "new": [Posting((2,), 1)]}))
        with load_index_v2(path) as lazy:
            assert lazy.segment_count == 2
            assert lazy.postings("k") == (Posting((0,), 1),
                                          Posting((1,), 2))
            assert lazy.postings("new") == (Posting((2,), 1),)

    def test_append_sums_same_code_frequencies(self, tmp_path):
        """Segment merge must match InvertedIndex.merged_with."""
        path = tmp_path / "sum.idx2"
        first = InvertedIndex({"k": [Posting((0,), 1)]})
        second = InvertedIndex({"k": [Posting((0,), 2)]})
        save_index_v2(first, path)
        append_segment(path, second)
        with load_index_v2(path) as lazy:
            assert lazy.postings("k") == \
                first.merged_with(second).postings("k")

    def test_tombstone_shadows_older_segments(self, tmp_path):
        path = tmp_path / "tomb.idx2"
        save_index_v2(InvertedIndex({"dead": [Posting((0,), 1)],
                                     "kept": [Posting((1,), 1)]}), path)
        append_tombstones(path, ["dead"])
        with load_index_v2(path) as lazy:
            assert "dead" not in lazy
            assert lazy.postings("dead") == ()
            assert lazy.postings("kept") == (Posting((1,), 1),)

    def test_reinsert_after_tombstone(self, tmp_path):
        path = tmp_path / "re.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), path)
        append_tombstones(path, ["k"])
        append_segment(path, InvertedIndex({"k": [Posting((5,), 3)]}))
        with load_index_v2(path) as lazy:
            assert lazy.postings("k") == (Posting((5,), 3),)

    def test_open_snapshot_survives_append(self, tmp_path):
        path = tmp_path / "snap.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), path)
        with load_index_v2(path) as snapshot:
            append_segment(path, InvertedIndex({"k": [Posting((1,), 1)]}))
            assert snapshot.postings("k") == (Posting((0,), 1),)
        with load_index_v2(path) as fresh:
            assert len(fresh.postings("k")) == 2

    def test_merge_compacts_to_one_segment(self, tmp_path):
        path = tmp_path / "compact.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), path)
        append_segment(path, InvertedIndex({"k": [Posting((1,), 1)]}))
        append_tombstones(path, ["k"])
        append_segment(path, InvertedIndex({"k": [Posting((2,), 7)],
                                            "j": [Posting((3,), 1)]}))
        before = inspect_index(path)
        assert before["segments"] == 4 and before["tombstones"] == 1
        merge_index(path)
        after = inspect_index(path)
        assert after["segments"] == 1 and after["tombstones"] == 0
        assert after["bytes"] < before["bytes"]
        with load_index_v2(path) as lazy:
            assert lazy.postings("k") == (Posting((2,), 7),)
            assert lazy.postings("j") == (Posting((3,), 1),)

    def test_merge_to_output_leaves_source(self, tmp_path):
        source = tmp_path / "src.idx2"
        target = tmp_path / "dst.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), source)
        append_segment(source, InvertedIndex({"k": [Posting((1,), 1)]}))
        merge_index(source, output=target)
        assert inspect_index(source)["segments"] == 2
        assert inspect_index(target)["segments"] == 1

    def test_segment_counters(self, tmp_path):
        path = tmp_path / "cnt.idx2"
        save_index_v2(InvertedIndex({"k": [Posting((0,), 1)]}), path)
        with metrics_scope() as metrics:
            append_segment(path, InvertedIndex({"k": [Posting((1,), 1)]}))
            append_tombstones(path, ["k"])
            merge_index(path)
            assert metrics.counter("segment_appends") == 2
            assert metrics.counter("segment_tombstones") == 1
            assert metrics.counter("segment_merges") == 1


class TestAutodetect:
    def test_open_v1(self, figure1_index, tmp_path):
        path = tmp_path / "v1.idx"
        save_index(figure1_index, path)
        opened = open_index(path)
        assert not isinstance(opened, LazyIndex)
        assert opened.raw_postings() == figure1_index.raw_postings()

    def test_open_v2(self, figure1_index, tmp_path):
        path = tmp_path / "v2.idx2"
        save_index_v2(figure1_index, path)
        opened = open_index(path)
        assert isinstance(opened, LazyIndex)
        assert opened.raw_postings() == figure1_index.raw_postings()
        opened.close()

    def test_open_counters(self, figure1_index, tmp_path):
        save_index(figure1_index, tmp_path / "a.idx")
        save_index_v2(figure1_index, tmp_path / "b.idx2")
        with metrics_scope() as metrics:
            open_index(tmp_path / "a.idx")
            open_index(tmp_path / "b.idx2").close()
            assert metrics.counter("index_open_v1") == 1
            assert metrics.counter("index_open_v2") == 1

    def test_open_unknown_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTASTORE-------")
        with pytest.raises(StoreFormatError):
            open_index(path)

    def test_merge_upgrades_v1(self, figure1_index, tmp_path):
        path = tmp_path / "old.idx"
        save_index(figure1_index, path)
        merge_index(path)
        assert inspect_index(path)["format"] == "CKSIDX2"
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == figure1_index.raw_postings()

    def test_inspect_v1(self, figure1_index, tmp_path):
        path = tmp_path / "v1.idx"
        save_index(figure1_index, path)
        summary = inspect_index(path)
        assert summary["format"] == "CKSIDX1"
        assert summary["keywords"] == len(figure1_index)
        assert summary["lazy"] is False


def _store_bytes(index: InvertedIndex) -> bytearray:
    from repro.index.store_v2 import encode_index_v2
    return bytearray(encode_index_v2(index))


class TestCorruption:
    """Every malformed input must raise StoreFormatError — never
    IndexError, struct.error or an unhandled crash (v1 behaves the
    same; see tests/index/test_store.py)."""

    def _load(self, tmp_path, blob: bytes):
        path = tmp_path / "corrupt.idx2"
        path.write_bytes(blob)
        return load_index_v2(path)

    def test_empty_file(self, tmp_path):
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, b"")

    def test_bad_magic(self, tmp_path):
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, b"NOTANIDX" + bytes(FOOTER_SIZE))

    def test_bad_tail_magic(self, tmp_path):
        blob = _store_bytes(InvertedIndex({"k": [Posting((0,), 1)]}))
        blob[-len(TAIL_MAGIC):] = b"XXXXXXXX"
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, bytes(blob))

    def test_truncated_footer(self, tmp_path):
        blob = _store_bytes(InvertedIndex({"k": [Posting((0,), 1)]}))
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, bytes(blob[:len(MAGIC_V2) + 3]))

    def test_directory_offset_past_eof(self, tmp_path):
        blob = _store_bytes(InvertedIndex({"k": [Posting((0,), 1)]}))
        footer = struct.pack("<QQ8s", 10_000, 5, TAIL_MAGIC)
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, bytes(blob[:-FOOTER_SIZE]) + footer)

    def test_posting_block_past_eof(self, tmp_path):
        # A directory whose extent points beyond the file body.
        import io

        from repro.index.store import write_varint
        from repro.index.store_v2 import (_encode_directory,
                                          _encode_footer, Extent)
        body = io.BytesIO()
        body.write(MAGIC_V2)
        directory = _encode_directory(
            [[Extent("k", False, 100_000, 30, 3)]])
        offset = body.tell()
        body.write(directory)
        body.write(_encode_footer(offset, len(directory)))
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, body.getvalue())

    def test_npost_overflowing_block(self, tmp_path):
        # npost claims more postings than the block could possibly hold.
        import io

        from repro.index.store_v2 import (_encode_directory,
                                          _encode_footer, Extent)
        body = io.BytesIO()
        body.write(MAGIC_V2)
        block = b"\x00\x00\x01"  # one posting: shared=0 extra=0 freq=1
        body.write(block)
        directory = _encode_directory(
            [[Extent("k", False, len(MAGIC_V2), len(block), 500)]])
        offset = body.tell()
        body.write(directory)
        body.write(_encode_footer(offset, len(directory)))
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, body.getvalue())

    def test_overflowing_varint_in_directory(self, tmp_path):
        # 10 continuation bytes: shift exceeds 63 -> StoreFormatError.
        import io

        from repro.index.store_v2 import _encode_footer
        body = io.BytesIO()
        body.write(MAGIC_V2)
        directory = b"\xff" * 10 + b"\x7f"
        offset = body.tell()
        body.write(directory)
        body.write(_encode_footer(offset, len(directory)))
        with pytest.raises(StoreFormatError):
            self._load(tmp_path, body.getvalue())

    def test_bad_shared_prefix_in_block(self, tmp_path, figure1_index):
        # shared=3 with no previous code must be rejected at decode.
        import io

        from repro.index.store_v2 import (_encode_directory,
                                          _encode_footer, Extent)
        body = io.BytesIO()
        body.write(MAGIC_V2)
        block = b"\x03\x00\x01"  # shared=3 extra=0 freq=1
        body.write(block)
        directory = _encode_directory(
            [[Extent("k", False, len(MAGIC_V2), len(block), 1)]])
        offset = body.tell()
        body.write(directory)
        body.write(_encode_footer(offset, len(directory)))
        path = tmp_path / "shared.idx2"
        path.write_bytes(body.getvalue())
        with load_index_v2(path) as lazy:
            with pytest.raises(StoreFormatError):
                lazy.postings("k")

    @given(position=st.integers(min_value=0, max_value=10_000),
           value=st.integers(0, 255))
    def test_single_byte_corruption_never_crashes(self, figure1_tree,
                                                  tmp_path_factory,
                                                  position, value):
        """Flipping any byte must either still open+decode or raise a
        *store* error — never an unhandled crash."""
        path = tmp_path_factory.mktemp("fuzz2") / "f.idx2"
        index = InvertedIndex.from_tree(figure1_tree)
        save_index_v2(index, path)
        blob = bytearray(path.read_bytes())
        position %= len(blob)
        blob[position] = value
        path.write_bytes(bytes(blob))
        try:
            with load_index_v2(path) as lazy:
                for keyword in lazy.keywords():
                    lazy.postings(keyword)
        except (StoreFormatError, MemoryError):
            pass

    def test_append_to_v1_store_rejected(self, figure1_index, tmp_path):
        path = tmp_path / "v1.idx"
        save_index(figure1_index, path)
        assert path.read_bytes().startswith(MAGIC_V1)
        with pytest.raises(StoreFormatError):
            append_segment(path, figure1_index)


def _duplicated_index(copies: int = 8) -> InvertedIndex:
    """``copies`` structurally identical subtrees under distinct roots.

    Every root r carries the same relative postings (a@(0,), a@(1,2),
    b@(1,3)), so the dedup builder must collapse them into one group
    with ``copies`` occurrences."""
    lists: dict[str, list[Posting]] = {}
    for root in range(copies):
        for keyword, rel, freq in (("a", (0,), 1), ("a", (1, 2), 2),
                                   ("b", (1, 3), 1)):
            lists.setdefault(keyword, []).append(
                Posting((root,) + rel, freq))
    return InvertedIndex({
        keyword: sorted(plist, key=lambda posting: posting.code)
        for keyword, plist in lists.items()
    })


class TestDedup:
    """The DAG-deduped layout changes bytes, never answers: flag-3
    blocks must fan back out to the exact plain postings through every
    lifecycle step (load, append, tombstone, merge)."""

    @given(lists=posting_lists)
    def test_dedup_roundtrip(self, tmp_path_factory, lists):
        """load(save_dedup(idx)) == idx for arbitrary posting lists —
        including ones with nothing worth deduplicating."""
        path = tmp_path_factory.mktemp("dedup") / "index.idx2"
        index = _index(lists)
        save_index_v2_dedup(index, path)
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == index.raw_postings()

    def test_dedup_store_is_smaller(self):
        index = _duplicated_index(copies=40)
        assert len(encode_index_v2_dedup(index)) < \
            len(encode_index_v2(index))

    def test_find_duplicate_subtrees(self):
        groups = find_duplicate_subtrees(_duplicated_index(copies=8))
        assert len(groups) == 1
        assert groups[0] == tuple((root,) for root in range(8))

    def test_find_duplicate_subtrees_min_postings(self):
        # Each subtree holds 3 postings; a floor above that finds none.
        index = _duplicated_index(copies=8)
        assert find_duplicate_subtrees(index, min_postings=4) == []

    def test_inspect_reports_dedup(self, tmp_path):
        path = tmp_path / "dedup.idx2"
        save_index_v2_dedup(_duplicated_index(), path)
        info = inspect_index(path)
        assert info["dedup_groups"] >= 1
        assert info["dedup_blocks"] >= 1

    def test_fanout_roundtrips_through_merge(self, tmp_path):
        # dedup store --merge--> plain --merge(dedup)--> dedup again;
        # the postings never change.
        index = _duplicated_index()
        path = tmp_path / "cycle.idx2"
        save_index_v2_dedup(index, path)
        merge_index(path)
        assert inspect_index(path)["dedup_blocks"] == 0
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == index.raw_postings()
        merge_index(path, dedup=True)
        assert inspect_index(path)["dedup_blocks"] >= 1
        with load_index_v2(path) as lazy:
            assert lazy.raw_postings() == index.raw_postings()

    def test_tombstone_shadows_dedup_postings(self, tmp_path):
        index = _duplicated_index()
        path = tmp_path / "tomb.idx2"
        save_index_v2_dedup(index, path)
        append_tombstones(path, ["a"])
        with load_index_v2(path) as lazy:
            assert lazy.postings("a") == ()
            assert lazy.postings("b") == index.postings("b")
        # Reinsert after the tombstone: only the new postings survive.
        append_segment(path, InvertedIndex({"a": [Posting((9, 9), 7)]}))
        with load_index_v2(path) as lazy:
            assert lazy.postings("a") == (Posting((9, 9), 7),)

    def test_append_sums_into_dedup_base(self, tmp_path):
        index = _duplicated_index()
        path = tmp_path / "sum.idx2"
        save_index_v2_dedup(index, path)
        append_segment(path, InvertedIndex({"a": [Posting((0, 0), 5)]}))
        with load_index_v2(path) as lazy:
            merged = {posting.code: posting.frequency
                      for posting in lazy.postings("a")}
            assert merged[(0, 0)] == 1 + 5

    def test_dedup_counters(self, tmp_path):
        path = tmp_path / "count.idx2"
        with metrics_scope() as registry:
            save_index_v2_dedup(_duplicated_index(), path)
            assert registry.counter("dedup_groups_written") >= 1
            assert registry.counter("dedup_postings_saved") >= 1
        with metrics_scope() as registry:
            with load_index_v2(path) as lazy:
                lazy.postings("a")
            assert registry.counter("dedup_blocks_expanded") >= 1
            assert registry.counter("dedup_postings_expanded") >= 1


class TestDedupCorruption:
    """Adversarial bytes against the flag-2/flag-3 layout: every
    malformed structure stops at StoreFormatError."""

    def _body(self, blocks):
        """Assemble a store from (extent_args, payload) pairs."""
        import io

        from repro.index.store_v2 import (Extent, _encode_directory,
                                          _encode_footer)
        body = io.BytesIO()
        body.write(MAGIC_V2)
        extents = []
        for args, payload in blocks:
            offset = body.tell()
            body.write(payload)
            extents.append(Extent(args[0], False, offset, len(payload),
                                  args[1], kind=args[2]))
        directory = _encode_directory([extents])
        offset = body.tell()
        body.write(directory)
        body.write(_encode_footer(offset, len(directory)))
        return body.getvalue()

    def test_table_flag_requires_empty_keyword(self, tmp_path):
        table = encode_subtree_table((((0,),),))
        blob = self._body([(("k", 1, "table"), table)])
        path = tmp_path / "named-table.idx2"
        path.write_bytes(blob)
        with pytest.raises(StoreFormatError):
            load_index_v2(path)

    def test_empty_keyword_requires_table_flag(self, tmp_path):
        blob = self._body([(("", 1, "postings"), b"\x00\x00\x01")])
        path = tmp_path / "anon-postings.idx2"
        path.write_bytes(blob)
        with pytest.raises(StoreFormatError):
            load_index_v2(path)

    def test_dedup_extent_without_table(self, tmp_path):
        block = encode_dedup_block([(0, [Posting((0,), 1)])], [])
        blob = self._body([(("k", 1, "dedup"), block)])
        path = tmp_path / "no-table.idx2"
        path.write_bytes(blob)
        with load_index_v2(path) as lazy:
            with pytest.raises(StoreFormatError):
                lazy.postings("k")

    def test_bad_group_id(self):
        groups = (((0,), (1,)),)  # one group
        block = encode_dedup_block([(3, [Posting((0,), 1)])], [])
        with pytest.raises(StoreFormatError):
            decode_dedup_block(block, 0, len(block), 2, groups)

    def test_expanded_count_mismatch(self):
        groups = (((0,), (1,)),)
        block = encode_dedup_block([(0, [Posting((5,), 1)])], [])
        expanded = decode_dedup_block(block, 0, len(block), 2, groups)
        assert [posting.code for posting in expanded] == [(0, 5), (1, 5)]
        with pytest.raises(StoreFormatError):
            decode_dedup_block(block, 0, len(block), 3, groups)

    def test_table_with_empty_group(self):
        blob = b"\x01\x00\x00\x00"  # ngroups=1, noccur=0, padding
        with pytest.raises(StoreFormatError):
            decode_subtree_table(blob, 0, len(blob))

    def test_table_ngroups_overflow(self):
        blob = b"\xff\x7f"  # ngroups=16383 in a 2-byte block
        with pytest.raises(StoreFormatError):
            decode_subtree_table(blob, 0, len(blob))

    def test_table_trailing_bytes(self):
        table = encode_subtree_table((((0,),),)) + b"\x00"
        with pytest.raises(StoreFormatError):
            decode_subtree_table(table, 0, len(table))

    def test_dedup_nsections_overflow(self):
        blob = b"\xff\x7f"  # nsections=16383 in a 2-byte block
        with pytest.raises(StoreFormatError):
            decode_dedup_block(blob, 0, len(blob), 0, ())

    def test_dedup_nrel_overflow(self):
        # One section claiming more relative postings than fit.
        blob = b"\x01\x00\xff\x7f"
        with pytest.raises(StoreFormatError):
            decode_dedup_block(blob, 0, len(blob), 0, (((0,),),))

    def test_dedup_trailing_bytes(self):
        block = encode_dedup_block([], [Posting((0,), 1)]) + b"\x00"
        with pytest.raises(StoreFormatError):
            decode_dedup_block(block, 0, len(block), 1, ())

    @given(position=st.integers(min_value=0, max_value=10_000),
           value=st.integers(0, 255))
    def test_single_byte_corruption_never_crashes(self, tmp_path_factory,
                                                  position, value):
        """The fuzz guarantee of TestCorruption, over a store whose
        bytes actually exercise flags 2 and 3: any flip either still
        decodes or stops at a *store* error."""
        path = tmp_path_factory.mktemp("dedup-fuzz") / "f.idx2"
        save_index_v2_dedup(_duplicated_index(), path)
        blob = bytearray(path.read_bytes())
        position %= len(blob)
        blob[position] = value
        path.write_bytes(bytes(blob))
        try:
            with load_index_v2(path) as lazy:
                for keyword in lazy.keywords():
                    lazy.postings(keyword)
                    for view in lazy.block_views(keyword):
                        from repro.core.kernel import _decode_block_view
                        _decode_block_view(view)
        except (StoreFormatError, MemoryError):
            pass
