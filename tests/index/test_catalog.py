"""Tests for the label/label-path catalog."""

from repro.index.catalog import Catalog
from repro.tree.builder import build_tree


def test_catalog_counts():
    tree = build_tree(("bib", None, [
        ("article", None, [("title", "a")]),
        ("article", None, [("title", "b"), ("author", "c")]),
    ]))
    catalog = Catalog(tree)
    assert catalog.labels == {"bib", "article", "title", "author"}
    assert catalog.label_count("article") == 2
    assert catalog.label_count("nope") == 0
    assert catalog.path_count("bib/article/title") == 2
    assert catalog.path_count("bib/article/author") == 1
    assert catalog.label_paths == {
        "bib", "bib/article", "bib/article/title", "bib/article/author",
    }


def test_iter_paths_most_common_first():
    tree = build_tree(("r", None, [("x", None), ("x", None), ("y", None)]))
    catalog = Catalog(tree)
    paths = list(catalog.iter_paths())
    assert paths[0] == ("r/x", 2)


def test_catalog_matches_tree_label_paths(figure1_tree):
    catalog = Catalog(figure1_tree)
    assert catalog.label_paths == figure1_tree.label_paths()
