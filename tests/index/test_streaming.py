"""Tests for the streaming XML indexer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.index.streaming import StreamingIndexer, index_xml
from repro.xmlio.loader import load_tree
from repro.xmlio.pull_parser import PullParser
from repro.xmlio.writer import dump_tree

SAMPLE = """
<bib>
  <article id="a7">
    <title>Keyword search in XML data</title>
    <author>Paul Cooper</author>
  </article>
</bib>
"""


class TestEquivalenceWithTreePath:
    def test_same_postings_as_from_tree(self):
        streamed = index_xml(SAMPLE)
        materialized = InvertedIndex.from_tree(load_tree(SAMPLE))
        assert streamed.raw_postings() == materialized.raw_postings()

    def test_counts_node_statistics(self):
        indexer = StreamingIndexer()
        for event in PullParser(SAMPLE):
            indexer.feed(event)
        index = indexer.finish()
        tree = load_tree(SAMPLE)
        assert indexer.node_count == len(tree)
        assert indexer.max_depth == tree.max_depth
        assert index.frequency("xml") == 1  # one instance node (the title)

    def test_attributes_indexed(self):
        index = index_xml(SAMPLE)
        assert index.frequency("a7") == 1
        assert index.frequency("id") == 1

    def test_mixed_content(self):
        streamed = index_xml("<a>one<b>two</b>three</a>")
        materialized = InvertedIndex.from_tree(
            load_tree("<a>one<b>two</b>three</a>"))
        assert streamed.raw_postings() == materialized.raw_postings()

    def test_unbalanced_feed_raises(self):
        indexer = StreamingIndexer()
        events = list(PullParser("<a><b/></a>"))
        indexer.feed(events[0])
        with pytest.raises(ValueError):
            indexer.finish()


@st.composite
def xml_documents(draw):
    labels = st.sampled_from(["a", "b", "item", "name"])
    words = st.sampled_from(["alpha", "beta", "x1", "kappa"])

    def spec(depth):
        children = st.lists(spec(depth - 1), max_size=3) if depth \
            else st.just([])
        value = st.one_of(
            st.none(),
            st.lists(words, min_size=1, max_size=3).map(" ".join))
        return st.tuples(labels, value, children)

    from repro.tree.builder import build_tree
    return dump_tree(build_tree(draw(spec(3))))


@given(xml_documents())
@settings(max_examples=50)
def test_streaming_equals_materialized(document):
    streamed = index_xml(document)
    materialized = InvertedIndex.from_tree(load_tree(document))
    assert streamed.raw_postings() == materialized.raw_postings()
