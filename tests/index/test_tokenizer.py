"""Tests for the keyword tokenizer."""

import pytest

from repro.index.tokenizer import Tokenizer, default_tokenizer


class TestTokens:
    def test_basic_split_and_lowercase(self):
        tok = default_tokenizer()
        assert list(tok.tokens("Paul Cooper")) == ["paul", "cooper"]

    def test_punctuation_separates(self):
        tok = default_tokenizer()
        assert list(tok.tokens("XML-based search, 2nd ed.")) == \
            ["xml", "based", "search", "2nd", "ed"]

    def test_digits_are_tokens(self):
        tok = default_tokenizer()
        assert list(tok.tokens("0 errors in 7 games")) == \
            ["0", "errors", "in", "7", "games"]

    def test_counts_track_multiplicity(self):
        tok = default_tokenizer()
        counts = tok.counts("data data DATA base")
        assert counts["data"] == 3
        assert counts["base"] == 1

    def test_case_preserved_when_disabled(self):
        tok = Tokenizer(lowercase=False)
        assert list(tok.tokens("Ab aB")) == ["Ab", "aB"]

    def test_stopwords_dropped(self):
        tok = Tokenizer(stopwords=["the", "IN"])
        assert list(tok.tokens("the search IN xml")) == ["search", "xml"]


class TestNormalize:
    def test_single_keyword(self):
        assert default_tokenizer().normalize("Cooper") == "cooper"

    def test_multiword_raises(self):
        with pytest.raises(ValueError):
            default_tokenizer().normalize("two words")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            default_tokenizer().normalize("---")
