"""Tests for index composition (merged_with)."""

from repro.index.inverted import InvertedIndex, Posting
from repro.tree.builder import build_tree


def test_merge_disjoint_keywords():
    a = InvertedIndex({"x": [Posting((0,))]})
    b = InvertedIndex({"y": [Posting((1,))]})
    merged = a.merged_with(b)
    assert merged.frequency("x") == 1
    assert merged.frequency("y") == 1


def test_merge_sums_frequencies_for_same_node():
    a = InvertedIndex({"x": [Posting((0,), 2)]})
    b = InvertedIndex({"x": [Posting((0,), 3), Posting((1,), 1)]})
    merged = a.merged_with(b)
    postings = merged.postings("x")
    assert [(p.code, p.frequency) for p in postings] == \
        [((0,), 5), ((1,), 1)]


def test_merge_keeps_document_order():
    a = InvertedIndex({"x": [Posting((3,))]})
    b = InvertedIndex({"x": [Posting((1,)), Posting((0, 2))]})
    merged = a.merged_with(b)
    codes = [p.code for p in merged.postings("x")]
    assert codes == sorted(codes)


def test_merged_index_searches(figure1_tree):
    # Split the figure-1 index in two halves by keyword and recombine.
    full = InvertedIndex.from_tree(figure1_tree)
    keywords = sorted(full.keywords())
    half = len(keywords) // 2
    first = InvertedIndex({k: list(full.postings(k))
                           for k in keywords[:half]})
    second = InvertedIndex({k: list(full.postings(k))
                            for k in keywords[half:]})
    merged = first.merged_with(second)
    assert merged.raw_postings() == full.raw_postings()


def test_merge_empty():
    a = InvertedIndex({"x": [Posting((0,))]})
    b = InvertedIndex({})
    assert a.merged_with(b).raw_postings() == a.raw_postings()
