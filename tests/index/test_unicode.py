"""Unicode corpora through the whole pipeline."""

from repro.core.engine import evaluate
from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import unicode_tokenizer
from repro.tree.builder import build_tree
from repro.xmlio.loader import load_tree
from repro.xmlio.writer import dump_tree

GREEK = ("bib", None, [
    ("article", None, [
        ("title", "αναζήτηση λέξεων σε δέντρα"),
        ("author", "Αγγελική Δημητρίου"),
    ]),
    ("article", None, [
        ("title", "σχεσιακές βάσεις"),
        ("author", "Γιάννης Βασιλείου"),
    ]),
])


class TestUnicodeTokenizer:
    def test_tokenizes_greek(self):
        tok = unicode_tokenizer()
        assert list(tok.tokens("Αγγελική Δημητρίου")) == \
            ["αγγελική", "δημητρίου"]

    def test_default_tokenizer_is_ascii_only(self):
        from repro.index.tokenizer import default_tokenizer
        assert list(default_tokenizer().tokens("αναζήτηση")) == []


class TestUnicodePipeline:
    def test_index_and_search_greek(self):
        tree = build_tree(GREEK)
        index = InvertedIndex.from_tree(tree, unicode_tokenizer())
        results = evaluate("(αναζήτηση (Αγγελική Δημητρίου))", index)
        assert results
        assert results[0].code == (0,)

    def test_cohesiveness_applies_to_greek(self):
        tree = build_tree(GREEK)
        index = InvertedIndex.from_tree(tree, unicode_tokenizer())
        # Cross-matched: Αγγελική with Βασιλείου spans both articles.
        cross = evaluate("((Αγγελική Βασιλείου))", index)
        assert all(result.code == () for result in cross) or not cross

    def test_xml_roundtrip_preserves_greek(self):
        tree = build_tree(GREEK)
        reloaded = load_tree(dump_tree(tree))
        assert reloaded.node((0, 0)).value == "αναζήτηση λέξεων σε δέντρα"

    def test_store_roundtrip_preserves_greek(self, tmp_path):
        from repro.index.store import load_index, save_index
        tree = build_tree(GREEK)
        index = InvertedIndex.from_tree(tree, unicode_tokenizer())
        save_index(index, tmp_path / "el.idx")
        loaded = load_index(tmp_path / "el.idx")
        assert loaded.raw_postings() == index.raw_postings()
