"""Tests for the binary posting store (format + round trips)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StoreFormatError
from repro.index.inverted import InvertedIndex, Posting
from repro.index.store import (MAGIC, load_index, read_varint, save_index,
                               write_varint)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**60))
    def test_roundtrip(self, value):
        buffer = io.BytesIO()
        write_varint(buffer, value)
        buffer.seek(0)
        assert read_varint(buffer) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(io.BytesIO(), -1)

    def test_truncated_raises(self):
        with pytest.raises(StoreFormatError):
            read_varint(io.BytesIO(b"\x80"))

    def test_small_values_one_byte(self):
        buffer = io.BytesIO()
        write_varint(buffer, 127)
        assert len(buffer.getvalue()) == 1


posting_lists = st.dictionaries(
    st.text(alphabet="abcdefg", min_size=1, max_size=6),
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 30), max_size=6).map(tuple),
            st.integers(1, 5),
        ),
        max_size=10,
        unique_by=lambda pair: pair[0],
    ),
    max_size=6,
)


class TestStoreRoundtrip:
    @given(lists=posting_lists)
    def test_roundtrip(self, tmp_path_factory, lists):
        path = tmp_path_factory.mktemp("store") / "index.bin"
        index = InvertedIndex({
            keyword: [Posting(code, freq) for code, freq in pairs]
            for keyword, pairs in lists.items()
        })
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.raw_postings() == index.raw_postings()

    def test_roundtrip_from_tree(self, figure1_tree, tmp_path):
        index = InvertedIndex.from_tree(figure1_tree)
        path = tmp_path / "fig1.bin"
        written = save_index(index, path)
        assert written == path.stat().st_size
        loaded = load_index(path)
        assert loaded.raw_postings() == index.raw_postings()

    def test_front_coding_compresses(self, figure1_tree, tmp_path):
        # Dewey codes share long prefixes; the store should be much
        # smaller than a naive textual dump.
        index = InvertedIndex.from_tree(figure1_tree)
        written = save_index(index, tmp_path / "c.bin")
        naive = sum(
            len(keyword) + sum(4 * (len(p.code) + 1) for p in plist)
            for keyword, plist in index.raw_postings().items())
        assert written < naive


class TestCorruptionFuzz:
    @given(position=st.integers(min_value=0, max_value=10_000),
           value=st.integers(0, 255))
    def test_single_byte_corruption_never_crashes(self, figure1_tree,
                                                  tmp_path_factory,
                                                  position, value):
        """Flipping any byte must either still decode (the byte may be
        unused or coincidentally valid) or raise a *store* error — never
        an unhandled crash."""
        path = tmp_path_factory.mktemp("fuzz") / "f.bin"
        index = InvertedIndex.from_tree(figure1_tree)
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        position %= len(blob)
        blob[position] = value
        path.write_bytes(bytes(blob))
        try:
            load_index(path)
        except (StoreFormatError, UnicodeDecodeError, MemoryError):
            pass


class TestStoreErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTANIDX" + b"\x00")
        with pytest.raises(StoreFormatError):
            load_index(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "trail.bin"
        index = InvertedIndex({"k": [Posting((0,))]})
        save_index(index, path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(StoreFormatError):
            load_index(path)

    def test_truncated_keyword(self, tmp_path):
        path = tmp_path / "trunc.bin"
        path.write_bytes(MAGIC + b"\x01" + b"\x05ab")
        with pytest.raises(StoreFormatError):
            load_index(path)

    def test_bad_shared_prefix(self, tmp_path):
        # shared=3 with no previous code must be rejected.
        path = tmp_path / "shared.bin"
        path.write_bytes(MAGIC + b"\x01" + b"\x01k" + b"\x01" +
                         b"\x03\x00\x01")
        with pytest.raises(StoreFormatError):
            load_index(path)
