"""Regression: posting lists must be immutable.

The runtime layer caches posting slices across queries, so a caller
mutating what the index hands out would silently corrupt every later
query's answer.  The index therefore deals exclusively in tuples and
exposes its mapping through a read-only proxy.
"""

import pytest

from repro.index.inverted import InvertedIndex, Posting


@pytest.fixture()
def index(figure1_tree):
    return InvertedIndex.from_tree(figure1_tree)


class TestPostingImmutability:
    def test_postings_returns_tuple(self, index):
        assert isinstance(index.postings("xml"), tuple)
        assert isinstance(index.postings("xml", limit=1), tuple)

    def test_posting_entries_are_frozen(self, index):
        posting = index.postings("xml")[0]
        with pytest.raises(AttributeError):
            posting.frequency = 99

    def test_raw_postings_mapping_is_read_only(self, index):
        raw = index.raw_postings()
        with pytest.raises(TypeError):
            raw["xml"] = ()
        with pytest.raises(TypeError):
            del raw["xml"]

    def test_raw_postings_values_are_tuples(self, index):
        assert all(isinstance(plist, tuple)
                   for plist in index.raw_postings().values())

    def test_mutable_input_is_copied_on_construction(self):
        lists = {"xml": [Posting((0,), 1)]}
        index = InvertedIndex(lists)
        lists["xml"].append(Posting((1,), 1))
        assert len(index.postings("xml")) == 1
