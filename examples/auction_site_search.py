"""Searching deep XMark-style auction data, with a persistent index.

Demonstrates the full pipeline on the deepest dataset: generate the
XMark-like tree, serialize it to XML, parse it back with the from-scratch
pull parser, build an inverted index, persist it to the binary posting
store, reload, and search — the workflow a downstream user of the
library would follow for their own documents.

Run:  python examples/auction_site_search.py
"""

import tempfile
import time
from pathlib import Path

from repro import (CohesiveLCA, InvertedIndex, dump_tree, load_index,
                   load_tree, save_index)
from repro.datasets import generate_xmark

dataset = generate_xmark(scale=120)
workdir = Path(tempfile.mkdtemp(prefix="repro-xmark-"))

# 1. Serialize and re-parse (exercising the XML substrate end to end).
xml_path = workdir / "auctions.xml"
xml_path.write_text(dump_tree(dataset.tree), encoding="utf-8")
started = time.perf_counter()
tree = load_tree(xml_path.read_text(encoding="utf-8"))
print(f"parsed {xml_path.stat().st_size:,} bytes of XML into "
      f"{len(tree):,} nodes (depth {tree.max_depth}) in "
      f"{time.perf_counter() - started:.2f}s")

# 2. Index and persist.
index = InvertedIndex.from_tree(tree)
store_path = workdir / "auctions.idx"
written = save_index(index, store_path)
print(f"posting store: {len(index):,} keywords in {written:,} bytes")

# 3. Reload and search.
index = load_index(store_path)
searcher = CohesiveLCA(index)

queries = [
    # items about gold watches offered in a known city
    "((gold watch) athens)",
    # people interested in vintage cameras
    "(person (vintage camera))",
    # flat version of the first query, for contrast
    "(gold watch athens)",
]
for text in queries:
    results = searcher.search(text)
    print(f"\nquery: {text}  ({len(results)} results)")
    for result in results[:5]:
        node = tree.node(result.code)
        print(f"  size={result.size:<3d} {node.label_path()}")
