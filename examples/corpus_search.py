"""Searching a collection of XML documents.

Builds a small corpus of separately generated bibliographies (streamed
into the index without materializing trees), searches it with a
cohesive query, and shows how results attribute to documents — and how
cross-document keyword co-occurrences are rejected.

Run:  python examples/corpus_search.py
"""

from repro import dump_tree
from repro.corpus import Corpus
from repro.datasets import generate_dblp

corpus = Corpus()
for shard in range(3):
    dataset = generate_dblp(scale=40, seed=100 + shard)
    corpus.add_document(f"bib-{shard}.xml", dump_tree(dataset.tree))

print(f"corpus: {len(corpus)} documents, "
      f"{len(corpus.index):,} distinct keywords\n")

for text in ["((Lei Chen) (Yi Guo))", "((Wei Wang) (Yi Chen))"]:
    print(f"query: {text}")
    for result in corpus.search(text)[:6]:
        print(f"  {result.document:12s} "
              f"node {result.code_in_document}  "
              f"size={result.result.size}")
    print()

# Keywords that only co-occur across documents never form a result:
# their LCA would be the virtual corpus root, which search() drops.
cross = corpus.search("(scott spectrin)")
kept = corpus.search("(scott theorem)", within_documents=True)
print(f"cross-document-only query results: {len(cross)}")
print(f"within-document results for (scott theorem): {len(kept)}")
