"""Deeply nested cohesive terms on a protein database.

The PSD query QP4 = (((B cell) stimulating factor) (house mouse)) nests
cohesive terms two levels deep: (B cell) inside ((B cell) stimulating
factor).  This example evaluates it on the synthetic PSD dataset, shows
how the nested term sizes contribute to the ranking vector, and prints
the lattice accounting that makes the query cheap to evaluate.

Run:  python examples/protein_search.py
"""

from repro import CohesiveLCA, InvertedIndex, parse_query
from repro.core.lattice import (bell_number, largest_sublattice_size,
                                lattice_node_count, stack_count)
from repro.datasets import generate_psd

dataset = generate_psd(scale=100)
index = InvertedIndex.from_tree(dataset.tree)
searcher = CohesiveLCA(index)

text = dataset.queries["QP4"]
query = parse_query(text)
print(f"query: {text}")
print(f"  keywords: {query.keyword_count}, terms: {query.term_count}, "
      f"nesting depth: {query.max_nesting_depth}")
print(f"  full lattice would have B{query.keyword_count} = "
      f"{bell_number(query.keyword_count)} partitions;")
print(f"  the cohesive lattice has {lattice_node_count(query)} nodes "
      f"({stack_count(query)} stacks, largest sublattice "
      f"{largest_sublattice_size(query)})\n")

for result in searcher.search(query):
    node = dataset.tree.node(result.code)
    grade = dataset.grades("QP4").get(result.code, 0)
    name = next((grandchild.value
                 for child in node.children
                 for grandchild in child.children
                 if grandchild.label == "name"), "-")
    print(f"  size={result.size}  grade={grade}  "
          f"{node.label_path():35s} {name!r}")
    print(f"      per-term partial LCA sizes: {result.term_sizes}")
