"""A miniature version of the paper's Fig. 5/7 efficiency study.

Sweeps the inverted-list prefix length for a 10-keyword cohesive query
on the DBLP-like dataset (linearity in the input size), then compares
CohesiveLCA against the LCAsz and SAOne baselines at 6 keywords (the
structural advantage of the reduced lattice).

Run:  python examples/scalability_demo.py
"""

import random

from repro import InvertedIndex
from repro.baselines import lcasz, sa_one
from repro.datasets import generate_dblp
from repro.datasets.workloads import frequent_keywords, instantiate
from repro.evaluation.experiments import (time_cohesive, timed,
                                          total_instances)

dataset = generate_dblp(scale=800)
index = InvertedIndex.from_tree(dataset.tree)
rng = random.Random(7)

print("-- scaling the input (10-keyword query, pattern "
      "(xx((xxxx)(xxxx))) ) --")
query = instantiate("(xx((xxxx)(xxxx)))", index, rng)
for limit in (50, 100, 200, 400):
    instances = total_instances(query, index, limit)
    seconds = time_cohesive(query, index, limit)
    bar = "#" * max(1, int(seconds * 400))
    print(f"  {instances:6,d} instances  {seconds * 1000:7.1f} ms  {bar}")

print("\n-- CohesiveLCA vs LCAsz vs SAOne (6 keywords, 200-instance "
      "lists) --")
keywords = frequent_keywords(index, 6, rng)
cohesive_query = instantiate("((xxx)(xxx))", index, rng)
rows = [
    ("CohesiveLCA", time_cohesive(cohesive_query, index, 200)),
    ("LCAsz", timed(lambda: lcasz(keywords, index, list_limit=200))[1]),
    ("SAOne", timed(lambda: sa_one(keywords, index, list_limit=200))[1]),
]
for name, seconds in rows:
    bar = "#" * max(1, int(seconds * 400))
    print(f"  {name:12s} {seconds * 1000:7.1f} ms  {bar}")
