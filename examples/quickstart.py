"""Quickstart: cohesive keyword search in a dozen lines.

Builds the paper's motivating scenario — a bibliography where a flat
keyword query cannot distinguish a John Smith / George Brown paper from
a John Brown / George Smith one — and shows how a cohesiveness
relationship fixes it.

Run:  python examples/quickstart.py
"""

from repro import CohesiveLCA, InvertedIndex, build_tree

tree = build_tree(("bib", None, [
    ("article", None, [
        ("title", "XML views"),
        ("author", "John Brown"),
        ("author", "George Smith"),
    ]),
    ("article", None, [
        ("title", "XML keyword search"),
        ("author", "John Smith"),
        ("author", "George Brown"),
    ]),
]))

index = InvertedIndex.from_tree(tree)
searcher = CohesiveLCA(index)


def show(query):
    print(f"\nquery: {query}")
    for result in searcher.search(query):
        node = tree.node(result.code)
        print(f"  {node.label_path():20s} size={result.size}")


# The flat query matches BOTH articles (and the whole bibliography).
show("(XML John Smith George Brown)")

# Cohesiveness relationships keep the author names together: only the
# second article (and the root, at a worse rank) survive.
show("(XML (John Smith) (George Brown))")
