"""The lattice dimensionality reduction of paper §3 (Figs. 2 and 3).

Prints the partition lattices for the queries of Fig. 2 — showing the
15 → 7 → 3 reduction as cohesiveness relationships are added — and the
component-lattice accounting of Fig. 3 (877 full-lattice nodes vs 9
composed nodes for the 7-keyword query).

Run:  python examples/lattice_reduction.py
"""

from repro import parse_query
from repro.core.lattice import (bell_number,
                                component_lattice_sizes,
                                largest_sublattice_size,
                                lattice_node_count, stack_count)

FIG2 = [
    "(XML Query John Smith)",
    "(XML Query (John Smith))",
    "((XML Query) (John Smith))",
]


from repro.core.lattice import render_lattice

for text in FIG2:
    query = parse_query(text)
    print(render_lattice(query))
    print(f"  lattice nodes (as drawn in the paper): "
          f"{lattice_node_count(query)}")
    print()

fig3 = "((XML Keyword Search) (Paul Cooper) (Mary Davis))"
query = parse_query(fig3)
print(fig3)
print(f"  full lattice of {query.keyword_count} keywords: "
      f"B{query.keyword_count} = {bell_number(query.keyword_count)}")
print(f"  composed lattice: {lattice_node_count(query)} nodes")
print(f"  component lattice sizes: {component_lattice_sizes(query)} "
      f"({stack_count(query)} stacks)")
print(f"  largest sublattice: {largest_sublattice_size(query)} stacks")
