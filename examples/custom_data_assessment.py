"""Bring-your-own-data evaluation with pattern-based assessment.

For the generated datasets the ground truth is planted; for *your* XML,
the paper's methodology applies directly: grade result LCAs by the
label-path patterns they realize (§4.1).  This example indexes a small
handwritten catalog, runs two semantics, grades both with a
:class:`PatternAssessor` and reports precision and NDCG — the workflow
for evaluating keyword search on data the library has never seen.

Run:  python examples/custom_data_assessment.py
"""

from repro import CohesiveLCA, InvertedIndex, load_tree, parse_query
from repro.baselines import slca
from repro.evaluation import PatternAssessor
from repro.evaluation.metrics import ndcg, precision

CATALOG = """
<store>
  <department name="music">
    <product>
      <name>vintage jazz vinyl</name>
      <maker>blue note records</maker>
    </product>
    <product>
      <name>blue vinyl tablecloth</name>
      <maker>jazz home deco</maker>
    </product>
  </department>
  <department name="furniture">
    <product>
      <name>walnut table</name>
      <review>a jazz bar bought six in blue</review>
    </product>
  </department>
</store>
"""

tree = load_tree(CATALOG)
index = InvertedIndex.from_tree(tree)

# The analyst's judgment, expressed as label-path rules: a product node
# is a perfect answer; a department is partially useful; anything else
# (the store root, a lone field) is noise.
assessor = (PatternAssessor(tree)
            .add_rule("department/product", grade=3)
            .add_rule("store/department", grade=1))

query = "((blue note) jazz vinyl)"
cohesive = [r.code for r in CohesiveLCA(index).search(query)]
flat = slca(parse_query(query).distinct_keywords(), index)

for name, returned in (("CohesiveLCA", cohesive), ("SLCA", flat)):
    relevant = assessor.relevant_among(returned, min_grade=3)
    grades = assessor.grades_for(returned)
    print(f"{name:12s} returned={len(returned)}  "
          f"P(grade 3)={precision(returned, relevant) * 100:5.1f}%  "
          f"NDCG={ndcg(returned, grades) * 100:5.1f}%")
    for code in returned:
        print(f"    grade {assessor.grade(code)}  "
              f"{tree.node(code).label_path()}")
