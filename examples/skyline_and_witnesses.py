"""Skyline semantics and witness subtrees (the paper's §6 extensions).

On the NASA dataset: evaluate a nested cohesive query, peel the skyline
layers of the answer (Pareto-optimal results over the per-term
compactness vectors — the semantics the paper names as future work),
and reconstruct the minimal matching subtree of the best result so a UI
could highlight *why* it matched.

Run:  python examples/skyline_and_witnesses.py
"""

from repro import (CohesiveLCA, InvertedIndex, parse_query,
                   reconstruct_witness, search_top_k, skyline_layers)
from repro.datasets import generate_nasa
from repro.tree import dewey

dataset = generate_nasa(scale=100)
index = InvertedIndex.from_tree(dataset.tree)
query = parse_query(dataset.queries["QN3"])
print(f"query: {query}   (terms: {query.term_count}, "
      f"nesting: {query.max_nesting_depth})\n")

results = CohesiveLCA(index).search(query)
print(f"{len(results)} results; skyline layers over the per-term "
      f"size vectors:")
for depth, layer in enumerate(skyline_layers(results)):
    for result in layer:
        node = dataset.tree.node(result.code)
        print(f"  layer {depth}: {node.label_path():25s} "
              f"terms={result.term_sizes}")

best = search_top_k(query, index, 1)[0]
witness = reconstruct_witness(query, index, best.code)
print(f"\nwitness for the best result "
      f"({dewey.format_code(best.code)}, size {best.size}):")
for occurrence, instance in zip(query.occurrences, witness.assignment):
    node = dataset.tree.node(instance)
    shown = (node.value or "")[:40]
    print(f"  {occurrence.keyword:14s} -> {node.label_path():35s} "
          f"{shown!r}")
print(f"minimal connecting tree spans {len(witness.mct_nodes())} nodes")
