"""Bibliographic search over a DBLP-like dataset.

Generates the synthetic DBLP dataset (with the paper's Table 2 DBLP
queries planted), then for each query compares:

* CohesiveLCA (all results, ranked by LCA size),
* top-1-size CohesiveLCA (the layer used for the Fig. 4 comparison),
* SLCA (the strongest classic filtering semantics),

against the planted ground truth, and finally shows the §2.2
cohesive-term vector ranking on one query.

Run:  python examples/bibliographic_search.py
"""

from repro import CohesiveLCA, InvertedIndex, parse_query, rank_results
from repro.baselines import slca
from repro.core.ranking import top_size_results
from repro.datasets import generate_dblp
from repro.evaluation.metrics import f_measure, precision, recall

dataset = generate_dblp(scale=120)
index = InvertedIndex.from_tree(dataset.tree)
searcher = CohesiveLCA(index)

print(f"dataset: {len(dataset.tree)} nodes, depth "
      f"{dataset.tree.max_depth}\n")

for query_id, text in dataset.queries.items():
    relevant = dataset.relevant_codes(query_id)
    cohesive = searcher.search(text)
    top = top_size_results(cohesive)
    flat = slca(parse_query(text).distinct_keywords(), index)
    print(f"{query_id}  {text}")
    for name, returned in (
        ("CohesiveLCA", [r.code for r in cohesive]),
        ("top-1-size ", [r.code for r in top]),
        ("SLCA       ", flat),
    ):
        print(f"   {name}  {len(returned):3d} results   "
              f"P={precision(returned, relevant) * 100:5.1f}%  "
              f"R={recall(returned, relevant) * 100:5.1f}%  "
              f"F={f_measure(returned, relevant) * 100:5.1f}%")
    print()

print("cohesive-term vector ranking for QD3:")
for item in rank_results(dataset.queries["QD3"], index)[:5]:
    node = dataset.tree.node(item.code)
    title = next((child.value for child in node.children
                  if child.label == "title"), "-")
    print(f"  score={item.score:8.4f} size={item.size}  "
          f"{node.label_path()}  {title!r}")
